"""The Myrinet NIC: firmware pipeline, DMA, ports, matching, rendezvous.

One :class:`Nic` model serves both GM and MX — as on real hardware,
where the same LANai chip ran either MCP.  The API layers
(:mod:`repro.gm`, :mod:`repro.mx`) differ in the *costs* they attach to
descriptors and ports (:class:`repro.hw.params.ApiCosts`), in addressing
(GM translates registered virtual addresses in the NIC, MX hands the
NIC physical addresses), and in message-class strategy (MX's
PIO/copy/rendezvous split).

Pipeline of an eager message (times from :mod:`repro.hw.params`)::

    host: host_send (CPU)                 | charged by the API layer
    host->NIC doorbell                    | doorbell_ns
    firmware send processing              | fw_send_ns (+ translation)
    DMA setup + gather from host memory   | dma_setup_ns, PCI held
    cut-through onto the wire             | lag + size/link_bw
    propagation                           | propagation_ns
    firmware receive processing           | fw_recv_ns (+ translation)
    DMA setup + scatter to host memory    | dma_setup_ns
    completion event                      | host_event (API layer)

Large rendezvous messages exchange real RTS/CTS control messages on the
simulated wire before the data moves, so the receiver's buffer is known
and the handshake latency emerges from the same pipeline.

Data is real: if a descriptor carries ``data`` bytes or source segments,
the bytes are gathered at DMA time and scattered into the receiver's
segments, so end-to-end tests observe genuine data movement.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .. import obs
from ..errors import LinkDown, MessageDropped, NicError, NodeCrashed, PortError
from ..mem.layout import PhysSegment
from ..mem.phys import PhysicalMemory
from ..mem.sglist import PayloadRef
from ..sim import Environment, Event, Resource, Store
from ..units import transfer_time_ns
from .link import Link
from .params import DEFAULT_RELIABILITY, ApiCosts, NicParams, ReliabilityParams
from .train import (MIN_TRAIN_FRAGS, PacketTrain, TrainRun,
                    coalescing_enabled)
from .wire import MsgKind  # re-export: historic public home of the enum

#: Train-length histogram buckets (packets per train; 1 MiB at the
#: default 4 KiB MTU is a 255-packet train).
TRAIN_LEN_BUCKETS = (4, 16, 64, 256, 1024)
from ..nicfw.transtable import TranslationTable


@dataclass
class SendCompletion:
    """Posted to the sender when its message has left the host."""

    tag: Any
    size: int
    finished_at: int


@dataclass
class ReceiveCompletion:
    """Posted to the receiver when a message landed in its buffer."""

    tag: Any
    size: int
    match: int
    src_nic: int
    src_port: int
    data: Optional[PayloadRef]  # zero-copy chunk views of the payload
    finished_at: int
    truncated: bool = False
    meta: Any = None  # sender's out-of-band protocol header


@dataclass
class Message:
    """What travels on the wire."""

    kind: MsgKind
    src_nic: int
    src_port: int
    dst_nic: int
    dst_port: int
    match: int
    size: int
    data: Optional[PayloadRef] = None  # scatter/gather chunk views
    rndv_id: int = 0  # correlates RTS/CTS/RDATA
    meta: Any = None  # out-of-band protocol header (size included in ``size``)
    rma_offset: int = 0  # directed sends: byte offset into the target window
    wire_size: int = 0  # bytes this packet occupies on each wire hop
    # Reliable-delivery fields (all inert unless a fault plan enabled
    # the reliability sublayer; see _ReliableDelivery).
    seq: int = 0  # per-(src,dst)-peer sequence number; 0 = unsequenced
    epoch: int = 0  # sender's tx *session* toward this peer (monotonic)
    inc: int = 0  # sender's node incarnation; bumped by NIC reset/crash
    ack: int = 0  # piggybacked cumulative ack for the reverse direction
    ack_epoch: int = 0  # session the ack refers to (stale acks are ignored)
    dst_epoch: int = 0  # receiver incarnation the sender believes it talks to
    corrupted: bool = False  # injected bit error; receiver CRC drops it


@dataclass
class SendDescriptor:
    """Host -> NIC send request (built by the API layers)."""

    dst_nic: int
    dst_port: int
    match: int
    size: int
    src_port: int = 0
    sg: Optional[list[PhysSegment]] = None  # gather source (host memory)
    # Pre-gathered payload (PIO/copy paths); bytes-likes are normalized
    # to PayloadRef by Nic.submit.
    data: "Optional[PayloadRef | bytes]" = None
    translate_tx: bool = False  # NIC translates source address
    rendezvous: bool = False
    large_setup_ns: int = 0  # one-time DMA programming for rendezvous data
    fw_send_ns: int = 0
    completion: Optional[Event] = None
    tag: Any = None
    meta: Any = None  # out-of-band protocol header carried with the message
    rma_offset: int = 0  # directed sends: deposit offset in the target window


@dataclass
class PostedReceive:
    """A receive buffer posted on a port."""

    match: Optional[int]  # None matches anything
    capacity: int
    dest_sg: Optional[list[PhysSegment]] = None  # scatter target
    translate_rx: bool = False  # buffer is registered-virtual: NIC translates
    keep_data: bool = False  # deliver payload bytes in the completion
    persistent: bool = False  # RMA window: stays posted across matches
    completion: Optional[Event] = None
    tag: Any = None

    def accepts(self, msg_match: int) -> bool:
        return self.match is None or self.match == msg_match


@dataclass
class _PendingRendezvous:
    """Receiver-side state between CTS emission and data arrival."""

    recv: PostedReceive
    size: int
    match: int
    src_nic: int
    src_port: int


class NicPort:
    """One communication endpoint on a NIC (a GM port / MX endpoint)."""

    def __init__(self, nic: "Nic", port_id: int, costs: ApiCosts):
        self.nic = nic
        self.port_id = port_id
        self.costs = costs
        self.posted: deque[PostedReceive] = deque()
        self.unexpected: deque[Message] = deque()  # eager msgs w/o a recv
        self.unexpected_rts: deque[Message] = deque()
        self.open = True
        # API layers may subscribe to every completion on this port
        # (e.g. GM's unified event queue).
        self.completion_sink: Optional[Callable[[Any], None]] = None

    def post_receive(self, recv: PostedReceive) -> None:
        """Make a receive buffer available for matching."""
        if not self.open:
            raise PortError(f"post_receive on closed port {self.port_id}")
        # Unexpected traffic is matched in arrival order: RTS entries and
        # eager messages each keep FIFO order; RTS is served first since
        # rendezvous senders are stalled waiting for the CTS.
        for i, rts in enumerate(self.unexpected_rts):
            if recv.accepts(rts.match):
                del self.unexpected_rts[i]
                self.nic._accept_rts(self, rts, recv)
                return
        for i, msg in enumerate(self.unexpected):
            if recv.accepts(msg.match):
                del self.unexpected[i]
                self.nic._deliver_to_recv(self, msg, recv, late_match=True)
                return
        self.posted.append(recv)

    def _match(self, msg_match: int) -> Optional[PostedReceive]:
        for i, recv in enumerate(self.posted):
            if recv.accepts(msg_match):
                if not recv.persistent:
                    del self.posted[i]
                return recv
        return None

    def close(self) -> None:
        self.open = False
        self.posted.clear()
        self.unexpected.clear()
        self.unexpected_rts.clear()


@dataclass
class _PeerTx:
    """Sender-side reliable-delivery state toward one peer NIC."""

    next_seq: int = 1
    unacked: dict = None  # seq -> (Message, wire_bytes), ascending order
    retries: int = 0
    rto_cur: int = 0
    progress: int = 0  # bumped whenever a cumulative ack retires something
    timer_alive: bool = False

    def __post_init__(self):
        if self.unacked is None:
            self.unacked = {}


class _ReliableDelivery:
    """GM-firmware-style reliable delivery for one NIC.

    Mirrors what Myrinet's MCP does below the API layers: every semantic
    wire message (EAGER/RTS/CTS/RDATA) gets a per-peer sequence number, a
    cumulative ack rides piggybacked on all reverse traffic (with a
    delayed standalone ACK as fallback), lost messages are recovered by
    timeout-driven go-back-N retransmission with exponential backoff, and
    duplicates created by retransmission are suppressed at the receiver
    before they can reach port matching.  FRAG packets carry no payload
    semantics (the data rides the final packet) and are left unsequenced;
    a retransmission therefore resends only the semantic packet.

    The sublayer is created by :meth:`Nic.enable_reliability` — fault
    plans do this; the default simulation never pays for it.  After
    ``max_retries`` consecutive timeouts a peer is declared dead
    (:class:`MessageDropped` on subsequent submits); upper layers surface
    the failure through their own timeout budgets.

    Incarnations and sessions
    -------------------------

    Two levels of identity keep restarted conversations sound:

    * The node **incarnation** (``msg.inc``) changes only when the NIC
      actually loses state — a reset, or a crash followed by reboot.
      Sequenced traffic echoes ``dst_epoch``, the *receiver* incarnation
      the sender last heard from, so a restarted receiver can tell a
      stale retransmit (echoing its previous incarnation) from fresh
      traffic and drop it unacked; it answers with an RST-style pure ACK
      carrying its current incarnation.  A sender seeing a newer
      incarnation from a peer knows the peer's receive window for it is
      gone: it abandons the old tx session (unacked messages are
      dropped; upper-layer timeouts recover them), lifts any dead-peer
      verdict, and starts a fresh session — which is what lets a
      rebooted node rejoin a cluster without every peer resetting too.

    * The per-peer tx **session** (``msg.epoch``, from one monotonic
      NIC-wide counter) names one run of the sequence space toward one
      peer.  Restarting a session — after a reboot, or after a give-up
      retired the old one — starts a new epoch at seq 1; the receiver
      adopts any *newer* session by resetting its receive window, and
      drops leftovers of older sessions as duplicates.  Session
      restarts are deliberately *local*: adopting a peer's new session
      touches only the receive window for that peer, never our own
      transmit state, so a benign restart cannot cascade.
    """

    def __init__(self, nic: "Nic", params: ReliabilityParams, tracer=None):
        self.nic = nic
        self.env = nic.env
        self.params = params
        self.tracer = tracer
        #: Our node incarnation: bumped only by reset()/crash recovery,
        #: i.e. whenever receive state was genuinely lost.
        self.incarnation = 1
        #: Monotonic source of tx session epochs (never rewinds, so a
        #: restarted session is always *newer* on the wire).
        self._session_gen = 0
        self._session: dict[int, int] = {}  # peer -> our tx session epoch
        self._tx: dict[int, _PeerTx] = {}  # peer -> sender state
        self._rx_last: dict[int, int] = {}  # peer -> last in-order seq seen
        self._rx_session: dict[int, int] = {}  # peer -> its tx session epoch
        self._rx_inc: dict[int, int] = {}  # peer -> its incarnation
        self._last_acked_sent: dict[int, int] = {}  # peer -> last ack emitted
        self._ack_pending: set[int] = set()
        self._rst_pending: set[int] = set()
        self.dead_peers: dict[int, MessageDropped] = {}
        self._dead_since: dict[int, int] = {}  # peer -> verdict time

    def _emit(self, category: str, label: str, payload=None) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.env.now, category, label, payload)

    def _wants(self, category: str) -> bool:
        """Cheap pre-check so hot paths skip building payload dicts."""
        return self.tracer is not None and self.tracer.wants(category)

    def reset(self) -> None:
        """Forget all sequencing state (NIC reset / crash).

        The incarnation advances; the session-epoch counter does not
        rewind, so post-reset sessions still read as newer to peers.
        """
        self.incarnation += 1
        self._tx.clear()
        self._session.clear()
        self._rx_last.clear()
        self._rx_session.clear()
        self._rx_inc.clear()
        self._last_acked_sent.clear()
        self.dead_peers.clear()
        self._dead_since.clear()

    # -- transmit side ------------------------------------------------------

    def stamp(self, msg: Message, nbytes: int) -> None:
        """Sequence an outgoing message and arm retransmission.

        Called immediately before the wire transmit, with no intervening
        yields, so sequence order equals wire FIFO order.
        """
        peer = msg.dst_nic
        msg.ack = self._rx_last.get(peer, 0)
        msg.ack_epoch = self._rx_session.get(peer, 0)
        self._last_acked_sent[peer] = msg.ack
        # Every reliability-stamped message — pure ACKs included —
        # carries the sender's incarnation and an echo of the receiver
        # incarnation it believes it is talking to (0 = never heard).
        msg.inc = self.incarnation
        msg.dst_epoch = self._rx_inc.get(peer, 0)
        if msg.kind is MsgKind.ACK:
            msg.epoch = self._session.get(peer, 0)
            return  # pure acks are not themselves sequenced or acked
        st = self._tx.get(peer)
        if st is None:
            st = self._tx[peer] = _PeerTx(rto_cur=self.params.rto_ns)
            self._session_gen += 1
            self._session[peer] = self._session_gen
        msg.epoch = self._session[peer]
        msg.seq = st.next_seq
        st.next_seq += 1
        st.unacked[msg.seq] = (msg, nbytes)
        if not st.timer_alive:
            st.timer_alive = True
            self.env.process(
                self._retrans_timer(peer), name=f"{self.nic.name}.rto"
            )

    def _process_ack(self, peer: int, ack: int, ack_epoch: int) -> None:
        if ack_epoch != self._session.get(peer, 0):
            return  # ack for a previous session toward this peer
        st = self._tx.get(peer)
        if st is None:
            return
        progressed = False
        for seq in list(st.unacked):
            if seq > ack:
                break
            del st.unacked[seq]
            progressed = True
        if progressed:
            st.progress += 1
            st.retries = 0
            st.rto_cur = self.params.rto_ns

    def _retrans_timer(self, peer: int):
        st = self._tx[peer]
        try:
            while True:
                progress_at_sleep = st.progress
                yield self.env.timeout(st.rto_cur)
                if self.nic.crashed or not st.unacked:
                    return
                if self._tx.get(peer) is not st:
                    return  # session restarted under us; a new timer owns it
                if st.progress != progress_at_sleep:
                    continue  # acks flowed meanwhile; rto was reset
                st.retries += 1
                if st.retries > self.params.max_retries:
                    exc = MessageDropped(
                        f"{self.nic.name}: peer {peer} unreachable after "
                        f"{self.params.max_retries} retransmission rounds "
                        f"({len(st.unacked)} messages abandoned)"
                    )
                    self.dead_peers[peer] = exc
                    obs.counter("nic.tx.giveups",
                                node=self.nic.node_id, peer=peer).inc()
                    self._emit("nic", "giveup", {
                        "peer": peer, "abandoned": len(st.unacked),
                    })
                    st.unacked.clear()
                    # Retire the session toward this peer: a later probe
                    # (after a TTL expiry or an incarnation change) then
                    # starts a fresh session epoch at seq 1, which the
                    # peer adopts instead of swallowing as duplicates of
                    # the dead conversation.  Other peers are untouched.
                    self._dead_since[peer] = self.env.now
                    self._tx.pop(peer, None)
                    self._session.pop(peer, None)
                    return
                if self._wants("nic"):
                    self._emit("nic", "retransmit", {
                        "peer": peer,
                        "count": len(st.unacked),
                        "round": st.retries,
                        "rto_ns": st.rto_cur,
                    })
                st.rto_cur = min(st.rto_cur * 2, self.params.rto_max_ns)
                # Go-back-N: resend everything still unacked, in order.
                for seq in list(st.unacked):
                    entry = st.unacked.get(seq)
                    if entry is None:
                        continue  # acked while we were retransmitting
                    msg, nbytes = entry
                    self.nic.retransmissions += 1
                    obs.counter("nic.tx.retransmits",
                                node=self.nic.node_id, peer=peer).inc()
                    yield from self.nic.fw.acquire(self.params.retransmit_fw_ns)
                    msg.ack = self._rx_last.get(msg.dst_nic, 0)
                    msg.ack_epoch = self._rx_session.get(msg.dst_nic, 0)
                    yield from self.nic._link.transmit(
                        self.nic._link_end, msg, nbytes
                    )
        finally:
            st.timer_alive = False

    # -- receive side -------------------------------------------------------

    def on_arrival(self, msg: Message) -> Optional[Message]:
        """Filter an arriving wire message; returns the message if it
        should proceed to port matching, or None if consumed."""
        if msg.corrupted:
            # Firmware CRC check fails; drop without acking so the
            # sender's retransmission recovers the payload.
            self.nic._m_crc.inc()
            if self._wants("fault"):
                self._emit("fault", "corrupt_drop", {
                    "src": msg.src_nic, "seq": msg.seq, "kind": msg.kind.value,
                })
            return None
        peer = msg.src_nic
        if msg.kind is MsgKind.ACK:
            if msg.inc and msg.inc < self._rx_inc.get(peer, 0):
                # A leftover ack from the peer's previous incarnation
                # must not retire messages of the re-established session.
                self.nic._m_dup.inc()
                if self._wants("nic"):
                    self._emit("nic", "stale_ack", {"peer": peer})
                return None
            if msg.inc and msg.inc > self._rx_inc.get(peer, 0):
                # RST-style news: the peer runs a newer incarnation than
                # the one our session targeted.  Re-establish.
                self._peer_rebooted(peer, msg.inc)
            if msg.epoch > self._rx_session.get(peer, 0):
                self._adopt_session(peer, msg.epoch)
            if msg.ack:
                self._process_ack(peer, msg.ack, msg.ack_epoch)
            return None
        if msg.seq == 0:
            if msg.ack:
                self._process_ack(peer, msg.ack, msg.ack_epoch)
            return msg  # unsequenced traffic (reliability raced enabling)
        if msg.dst_epoch and msg.dst_epoch != self.incarnation:
            # The sender is talking to a previous incarnation of *us*:
            # a stale retransmit that predates our reset.  It must not
            # be delivered or acked as current — its payload was part of
            # a conversation our reboot lost.  Answer with an RST-style
            # pure ACK so the sender abandons that session and
            # re-establishes.
            self.nic._m_dup.inc()
            if self._wants("nic"):
                self._emit("nic", "stale_incarnation", {
                    "peer": peer, "seq": msg.seq, "for_epoch": msg.dst_epoch,
                })
            self._schedule_rst(peer)
            return None
        if msg.inc < self._rx_inc.get(peer, 0):
            # In-flight leftover from before the peer's reset: drop it
            # whole — its piggybacked ack belongs to a dead conversation.
            self.nic._m_dup.inc()
            if self._wants("nic"):
                self._emit("nic", "stale_epoch", {"peer": peer, "seq": msg.seq})
            return None
        if msg.inc > self._rx_inc.get(peer, 0):
            self._peer_rebooted(peer, msg.inc)
        if msg.epoch < self._rx_session.get(peer, 0):
            # Leftover of an older, retired session.  Its piggybacked
            # ack is still sound (retransmits re-stamp acks, and the
            # ack_epoch guard rejects anything for a dead tx session),
            # but the payload is a duplicate of a conversation already
            # torn down — drop it without acking.
            if msg.ack:
                self._process_ack(peer, msg.ack, msg.ack_epoch)
            self.nic._m_dup.inc()
            if self._wants("nic"):
                self._emit("nic", "stale_epoch", {"peer": peer, "seq": msg.seq})
            return None
        if msg.epoch > self._rx_session.get(peer, 0):
            # The peer restarted its sequence space in a new session;
            # accept the restart instead of treating seq 1 as a duplicate.
            self._adopt_session(peer, msg.epoch)
        if msg.ack:
            self._process_ack(peer, msg.ack, msg.ack_epoch)
        last = self._rx_last.get(peer, 0)
        if msg.seq == last + 1:
            self._rx_last[peer] = msg.seq
            self._schedule_ack(peer)
            return msg
        if msg.seq <= last:
            self.nic._m_dup.inc()
            if self._wants("nic"):
                self._emit("nic", "duplicate", {"peer": peer, "seq": msg.seq})
            self._schedule_ack(peer)  # re-ack so the sender stops resending
            return None
        # A gap: something before this message was lost.  Go-back-N:
        # drop it and let the sender's timeout resend the whole window.
        if self._wants("nic"):
            self._emit("nic", "gap", {
                "peer": peer, "seq": msg.seq, "expected": last + 1,
            })
        self._schedule_ack(peer)
        return None

    def _peer_rebooted(self, peer: int, inc: int) -> None:
        """Adopt a peer's new incarnation.  Its receive window for us is
        gone, so our transmit session toward it is dead: abandon it
        (upper-layer timeouts re-issue over a fresh session).  Our own
        receive state for the peer is likewise stale — clear it so the
        peer's post-reboot sessions are adopted cleanly."""
        known = self._rx_inc.get(peer, 0)
        self._rx_inc[peer] = inc
        if known:
            self._emit("nic", "resync", {"peer": peer, "epoch": inc})
            st = self._tx.pop(peer, None)
            self._session.pop(peer, None)
            if st is not None and st.unacked:
                obs.counter("nic.tx.session_aborts",
                            node=self.nic.node_id, peer=peer).inc()
                st.unacked.clear()  # the live retrans timer exits on this
        if self.dead_peers.pop(peer, None) is not None:
            self._dead_since.pop(peer, None)
            self._emit("nic", "peer_alive", {"peer": peer})
        self._rx_session.pop(peer, None)
        self._rx_last.pop(peer, None)
        self._last_acked_sent.pop(peer, None)

    def _adopt_session(self, peer: int, epoch: int) -> None:
        """The peer started a new tx session toward us: restart the
        receive window.  Strictly local — our own tx state is untouched,
        so a benign session restart cannot cascade."""
        self._rx_session[peer] = epoch
        self._rx_last[peer] = 0
        self._last_acked_sent.pop(peer, None)

    def dead_verdict(self, peer: int) -> Optional[MessageDropped]:
        """The standing dead-peer verdict for ``peer``, if any.

        With ``dead_peer_ttl_ns`` set, a verdict older than the TTL is
        lifted on the next submit — the sender probes the peer again
        over the session space it restarted at give-up time.  The
        default TTL of 0 keeps verdicts permanent (the historical
        behavior): only an incarnation change lifts them.
        """
        exc = self.dead_peers.get(peer)
        if exc is None:
            return None
        ttl = self.params.dead_peer_ttl_ns
        if ttl and self.env.now - self._dead_since.get(peer, 0) >= ttl:
            del self.dead_peers[peer]
            self._dead_since.pop(peer, None)
            self._emit("nic", "peer_probe", {"peer": peer})
            return None
        return exc

    def _schedule_rst(self, peer: int) -> None:
        """Queue an RST-style pure ACK telling ``peer`` our current
        incarnation (throttled to one in flight per peer)."""
        if peer in self._rst_pending:
            return
        self._rst_pending.add(peer)
        self.env.process(self._rst_proc(peer), name=f"{self.nic.name}.rst")

    def _rst_proc(self, peer: int):
        yield self.env.timeout(self.params.ack_delay_ns)
        self._rst_pending.discard(peer)
        if self.nic.crashed:
            return
        rst = Message(
            kind=MsgKind.ACK,
            src_nic=self.nic.node_id,
            src_port=0,
            dst_nic=peer,
            dst_port=0,
            match=0,
            size=0,
        )
        obs.counter("nic.tx.rsts", node=self.nic.node_id).inc()
        self.nic._m_acks.inc()
        yield from self.nic.fw.acquire(self.params.ack_fw_ns)
        yield from self.nic._wire_out(rst, self.nic.params.ctrl_message_bytes)

    def _schedule_ack(self, peer: int) -> None:
        if peer in self._ack_pending:
            return  # an ack is already queued; it will carry the latest seq
        self._ack_pending.add(peer)
        self.env.process(self._ack_proc(peer), name=f"{self.nic.name}.ack")

    def _ack_proc(self, peer: int):
        yield self.env.timeout(self.params.ack_delay_ns)
        self._ack_pending.discard(peer)
        if self.nic.crashed:
            return
        last = self._rx_last.get(peer, 0)
        if self._last_acked_sent.get(peer, 0) >= last:
            return  # a piggybacked ack already covered everything
        ack = Message(
            kind=MsgKind.ACK,
            src_nic=self.nic.node_id,
            src_port=0,
            dst_nic=peer,
            dst_port=0,
            match=0,
            size=0,
        )
        self.nic._m_acks.inc()
        yield from self.nic.fw.acquire(self.params.ack_fw_ns)
        yield from self.nic._wire_out(ack, self.nic.params.ctrl_message_bytes)


class Nic:
    """A Myrinet network interface card attached to one host."""

    _rndv_ids = itertools.count(1)

    def __init__(
        self,
        env: Environment,
        params: NicParams,
        phys: PhysicalMemory,
        node_id: int,
        name: str = "nic",
    ):
        self.env = env
        self.params = params
        self.phys = phys
        self.node_id = node_id
        self.name = name
        self.fw = Resource(env, 1, f"{name}.fw")  # the LANai processor
        self.pci = Resource(env, 1, f"{name}.pci")
        self.transtable = TranslationTable(params.translation_table_entries)
        self.ports: dict[int, NicPort] = {}
        self._rx_queue: Store = Store(env, f"{name}.rx")
        self._link: Optional[Link] = None
        self._link_end: str = "a"
        self._pending_rndv: dict[int, _PendingRendezvous] = {}
        self._stalled_rndv: dict[int, SendDescriptor] = {}
        # Per-NIC accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed); the
        # classic attribute names below read through to them.
        self._m_tx = obs.counter("nic.tx.messages", node=node_id)
        self._m_tx_bytes = obs.counter("nic.tx.bytes", node=node_id)
        self._m_rx = obs.counter("nic.rx.messages", node=node_id)
        self._m_rx_bytes = obs.counter("nic.rx.bytes", node=node_id)
        self._m_dup = obs.counter("nic.rx.duplicates", node=node_id)
        self._m_crc = obs.counter("nic.rx.crc_drops", node=node_id)
        self._m_acks = obs.counter("nic.tx.acks", node=node_id)
        # Reliable-delivery sublayer: None until a fault plan (or a test)
        # calls enable_reliability(); every hot-path hook is an `is None`
        # check so the perfect-fabric simulation is unchanged.
        self._rel: Optional[_ReliableDelivery] = None
        #: Analytic flow engine (repro.hw.flow.FlowNetwork), installed by
        #: fabric topology builders; None on direct links and classic
        #: stars, so their packet paths are untouched.
        self.flownet = None
        self.crashed = False
        #: Total retransmitted messages; per-peer detail lives on the
        #: registry as ``nic.tx.retransmits{node=...,peer=...}``.
        self.retransmissions = 0
        env.process(self._rx_loop(), name=f"{self.name}.rxloop")

    @property
    def messages_sent(self) -> int:
        return self._m_tx.value

    @property
    def messages_received(self) -> int:
        return self._m_rx.value

    @property
    def duplicates_dropped(self) -> int:
        return self._m_dup.value

    @property
    def crc_drops(self) -> int:
        return self._m_crc.value

    @property
    def acks_sent(self) -> int:
        return self._m_acks.value

    # -- wiring ------------------------------------------------------------

    def attach_link(self, link: Link, end: str) -> None:
        """Plug this NIC into one end of a link."""
        if self._link is not None:
            raise NicError(f"{self.name} already attached to a link")
        self._link = link
        self._link_end = end
        link.attach(end, self._on_wire_arrival)

    def open_port(self, port_id: int, costs: ApiCosts) -> NicPort:
        """Open a communication port with the given API cost profile."""
        if port_id in self.ports and self.ports[port_id].open:
            raise PortError(f"port {port_id} already open on {self.name}")
        port = NicPort(self, port_id, costs)
        self.ports[port_id] = port
        return port

    def port(self, port_id: int) -> NicPort:
        try:
            port = self.ports[port_id]
        except KeyError:
            raise PortError(f"no port {port_id} on {self.name}") from None
        if not port.open:
            raise PortError(f"port {port_id} on {self.name} is closed")
        return port

    # -- fault-tolerance lifecycle -------------------------------------------

    def enable_reliability(
        self,
        params: ReliabilityParams = DEFAULT_RELIABILITY,
        tracer=None,
    ) -> None:
        """Turn on GM-firmware-style reliable delivery on this NIC.

        Idempotent; installed by :meth:`repro.faults.FaultPlan.install`.
        Both ends of a conversation must enable it (the fault plan
        enables every NIC it is given).
        """
        if self._rel is None:
            self._rel = _ReliableDelivery(self, params, tracer)

    def crash(self) -> None:
        """The host died: the NIC stops sending, receiving, and acking.
        Subsequent submits raise :class:`NodeCrashed`."""
        self.crashed = True
        if self._rel is not None:
            self._rel.reset()

    def reset(self) -> None:
        """Firmware reset: wipe volatile NIC state (translations, pending
        rendezvous, sequence numbers) but come back up able to talk."""
        self.crashed = False
        self.transtable = TranslationTable(self.params.translation_table_entries)
        self._pending_rndv.clear()
        self._stalled_rndv.clear()
        if self._rel is not None:
            self._rel.reset()

    # -- host-facing send entry ----------------------------------------------

    def submit(self, desc: SendDescriptor) -> Event:
        """Submit a send descriptor (the doorbell write has already been
        charged by the API layer).  Returns the completion event.

        Fault surfacing happens here, synchronously in the caller's
        generator, never inside NIC processes: a crashed local NIC raises
        :class:`NodeCrashed`, a peer the reliability layer has given up
        on raises :class:`MessageDropped`, and a down link with no
        reliability layer to mask it raises :class:`LinkDown`.
        """
        if self._link is None:
            raise NicError(f"{self.name} not attached to a link")
        if self.crashed:
            raise NodeCrashed(f"{self.name}: local node has crashed")
        if self._rel is not None:
            dead = self._rel.dead_verdict(desc.dst_nic)
            if dead is not None:
                raise MessageDropped(
                    f"{self.name}: peer {desc.dst_nic} declared unreachable: {dead}"
                )
        elif self._link.is_down:
            raise LinkDown(
                f"{self.name}: link {self._link.name} is down and no "
                f"reliable-delivery layer is enabled to mask the outage"
            )
        if desc.completion is None:
            desc.completion = self.env.event(f"{self.name}.sendcomp")
        if desc.data is not None and not isinstance(desc.data, PayloadRef):
            desc.data = PayloadRef.from_bytes(desc.data)  # wrap, no copy
        self.env.process(self._tx_process(desc), name=f"{self.name}.tx")
        return desc.completion

    # -- transmit path ---------------------------------------------------------

    def _tx_process(self, desc: SendDescriptor):
        # Firmware picks up the descriptor and does per-message work.
        fw_time = desc.fw_send_ns
        if desc.translate_tx:
            fw_time += self.params.translation_lookup_ns
        yield from self.fw.acquire(fw_time)
        if desc.rendezvous:
            rndv_id = next(Nic._rndv_ids)
            self._stalled_rndv[rndv_id] = desc
            rts = Message(
                kind=MsgKind.RTS,
                src_nic=self.node_id,
                src_port=desc.src_port,
                dst_nic=desc.dst_nic,
                dst_port=desc.dst_port,
                match=desc.match,
                size=desc.size,
                rndv_id=rndv_id,
                meta=desc.meta,
            )
            yield from self._wire_out(rts, self.params.ctrl_message_bytes)
            # Data moves later, when the CTS comes back (_on_cts).
            return
        yield from self._transmit_data(desc, MsgKind.EAGER, rndv_id=0)

    def _transmit_data(self, desc: SendDescriptor, kind: MsgKind, rndv_id: int):
        # DMA from host memory: hold the PCI bus while feeding the wire
        # (cut-through: the wire starts after a small lag, and since PCI
        # outpaces the link, the wire is the pacing resource).
        tx_span = obs.span_begin(
            self.env, "nic", f"tx.{kind.value}",
            pid=self.node_id, tid=desc.src_port,
            size=desc.size, dst=desc.dst_nic,
        )
        pci_req = self.pci.request()
        yield pci_req
        try:
            if desc.large_setup_ns:
                yield self.env.timeout(desc.large_setup_ns)
            yield self.env.timeout(self.params.dma_setup_ns)
            data = desc.data
            if data is None and desc.sg is not None:
                # DMA gather: take zero-copy views of the source frames.
                # The frames detach copy-on-write if the host reuses the
                # buffer while the message is still in flight.
                data = PayloadRef.from_phys(self.phys, desc.sg)
            yield self.env.timeout(self.params.link.cut_through_lag_ns)
            assert self._link is not None
            # Fragment onto the wire at MTU granularity so switches can
            # forward packets while later ones still stream in (wormhole
            # behaviour at packet resolution).  Only the final packet is
            # a semantic message; FRAG packets pace the wire.
            mtu = self.params.mtu_bytes
            remaining = desc.size
            if remaining > mtu:
                remaining = yield from self._emit_frags(desc, remaining, mtu)
            while remaining > mtu:
                frag = Message(
                    kind=MsgKind.FRAG,
                    src_nic=self.node_id,
                    src_port=desc.src_port,
                    dst_nic=desc.dst_nic,
                    dst_port=desc.dst_port,
                    match=desc.match,
                    size=mtu,
                    wire_size=mtu,
                )
                yield from self._link.transmit(self._link_end, frag, mtu)
                remaining -= mtu
            msg = Message(
                kind=kind,
                src_nic=self.node_id,
                src_port=desc.src_port,
                dst_nic=desc.dst_nic,
                dst_port=desc.dst_port,
                match=desc.match,
                size=desc.size,
                data=data,
                rndv_id=rndv_id,
                meta=desc.meta,
                rma_offset=desc.rma_offset,
                wire_size=remaining,
            )
            # Stamping and transmit entry are atomic (no yield between
            # them), so sequence order equals wire FIFO order.
            if self._rel is not None:
                self._rel.stamp(msg, remaining)
            yield from self._link.transmit(self._link_end, msg, remaining)
        finally:
            pci_req.release()
        self._m_tx.inc()
        self._m_tx_bytes.inc(desc.size)
        obs.span_end(self.env, tx_span)
        assert desc.completion is not None
        desc.completion.succeed(
            SendCompletion(tag=desc.tag, size=desc.size, finished_at=self.env.now)
        )

    def _emit_frags(self, desc: SendDescriptor, remaining: int, mtu: int):
        """Put the FRAG train of a fragmented message on the wire.

        Tries the analytic fast path first: if the whole burst of
        ``nfrags`` pacing packets would cross an idle, fault-free,
        untraced link, one :class:`PacketTrain` replaces the per-packet
        loop with identical wire occupancy and timestamps.  Returns the
        bytes still to send; anything above one MTU falls through to
        the caller's classic per-packet loop (the de-coalesced case, or
        the tail of a train a competitor cut short).
        """
        fl = self.flownet
        if fl is not None:
            remaining = yield from fl.carry(self, desc, remaining, mtu)
            if remaining != desc.size:
                # The flow carried at least one packet.  If it was cut
                # short (de-coalesced), the tail goes per-packet in the
                # caller's loop — a train sized from ``desc.size`` would
                # misdescribe it.
                return remaining
        nfrags = (desc.size - 1) // mtu
        if nfrags < MIN_TRAIN_FRAGS or not coalescing_enabled():
            return remaining
        assert self._link is not None
        why = self._link.train_block_reason(self._link_end)
        if why is not None:
            obs.counter("net.train_decoalesce",
                        where=f"nic{self.node_id}", reason=why).inc()
            return remaining
        train = PacketTrain(
            src_nic=self.node_id,
            src_port=desc.src_port,
            dst_nic=desc.dst_nic,
            dst_port=desc.dst_port,
            match=desc.match,
            npackets=nfrags,
            wire_size=mtu,
        )
        run = TrainRun(nfrags)
        sent = yield from self._link.transmit_train(self._link_end, train, run)
        obs.counter("net.trains", node=self.node_id).inc()
        obs.histogram("net.train_len", buckets=TRAIN_LEN_BUCKETS).observe(sent)
        if sent < nfrags:
            obs.counter("net.train_splits", where=f"nic{self.node_id}").inc()
        return remaining - sent * mtu

    def _wire_out(self, msg: Message, nbytes: int):
        """Send a control message (no host DMA)."""
        assert self._link is not None
        msg.wire_size = nbytes
        yield self.env.timeout(self.params.link.cut_through_lag_ns)
        if self._rel is not None:
            self._rel.stamp(msg, nbytes)
        yield from self._link.transmit(self._link_end, msg, nbytes)

    # -- receive path -----------------------------------------------------------

    def _on_wire_arrival(self, msg: Message) -> None:
        if msg.dst_nic != self.node_id:
            raise NicError(
                f"{self.name} (node {self.node_id}) got message for node {msg.dst_nic}"
            )
        if self.crashed:
            return  # dead silicon: bits hit the connector and vanish
        self._rx_queue.put(msg)

    def _rx_loop(self):
        while True:
            msg = yield self._rx_queue.get()
            if msg.kind is MsgKind.FRAG:
                # Pacing packet of a fragmented message: the semantic
                # message (and all per-message costs) ride the final one.
                continue
            if self._rel is not None:
                filtered = self._rel.on_arrival(msg)
                if filtered is None:
                    continue  # ack / duplicate / gap / CRC failure
                msg = filtered
            if msg.kind is MsgKind.CTS:
                yield from self.fw.acquire(self._ctrl_fw_cost(msg))
                self._on_cts(msg)
                continue
            port = self.ports.get(msg.dst_port)
            if port is None or not port.open:
                # Message to nowhere: real GM raises an error event at the
                # sender; dropping here keeps the model simple and loud in
                # tests via the counters.
                continue
            costs = port.costs
            if msg.kind is MsgKind.RTS:
                yield from self.fw.acquire(costs.fw_recv_ns)
                recv = port._match(msg.match)
                if recv is None:
                    port.unexpected_rts.append(msg)
                else:
                    self._accept_rts(port, msg, recv)
                continue
            # EAGER or RDATA
            yield from self.fw.acquire(costs.fw_recv_ns + self.params.dma_setup_ns)
            if msg.kind is MsgKind.RDATA:
                pending = self._pending_rndv.pop(msg.rndv_id, None)
                if pending is None:
                    if self._rel is not None:
                        # A NIC reset wiped the pending-rendezvous table;
                        # the sender's give-up path reports the failure.
                        continue
                    raise NicError(f"RDATA with unknown rendezvous id {msg.rndv_id}")
                recv = pending.recv
            else:
                recv = port._match(msg.match)
            if recv is None:
                port.unexpected.append(msg)
                continue
            if recv.translate_rx:
                # The posted buffer is registered-virtual: the NIC looks
                # up its translation before the deposit DMA (the 0.5 us
                # the paper's physical primitives save on this side).
                yield from self.fw.acquire(self.params.translation_lookup_ns)
            self._complete_receive(port, msg, recv)

    def _ctrl_fw_cost(self, msg: Message) -> int:
        # Control messages are handled entirely in firmware; charge a
        # conservative half of the data-path receive cost.
        desc = self._stalled_rndv.get(msg.rndv_id)
        fw = desc.fw_send_ns if desc is not None else 500
        return max(200, fw // 2)

    def _accept_rts(self, port: NicPort, rts: Message, recv: PostedReceive) -> None:
        """A rendezvous request met a posted receive: emit the CTS."""
        pending = _PendingRendezvous(
            recv=recv,
            size=rts.size,
            match=rts.match,
            src_nic=rts.src_nic,
            src_port=rts.src_port,
        )
        self._pending_rndv[rts.rndv_id] = pending
        cts = Message(
            kind=MsgKind.CTS,
            src_nic=self.node_id,
            src_port=rts.dst_port,
            dst_nic=rts.src_nic,
            dst_port=rts.src_port,
            match=rts.match,
            size=rts.size,
            rndv_id=rts.rndv_id,
        )

        def _send_cts(env):
            yield from self.fw.acquire(port.costs.fw_send_ns // 2)
            yield from self._wire_out(cts, self.params.ctrl_message_bytes)

        self.env.process(_send_cts(self.env), name=f"{self.name}.cts")

    def _on_cts(self, cts: Message) -> None:
        desc = self._stalled_rndv.pop(cts.rndv_id, None)
        if desc is None:
            if self._rel is not None:
                return  # stale CTS from before a NIC reset
            raise NicError(f"CTS with unknown rendezvous id {cts.rndv_id}")
        self.env.process(
            self._transmit_data(desc, MsgKind.RDATA, rndv_id=cts.rndv_id),
            name=f"{self.name}.rdata",
        )

    def _deliver_to_recv(
        self, port: NicPort, msg: Message, recv: PostedReceive, late_match: bool = False
    ) -> None:
        """Deliver a buffered unexpected eager message to a late receive."""
        self._complete_receive(port, msg, recv)

    def _complete_receive(
        self, port: NicPort, msg: Message, recv: PostedReceive
    ) -> None:
        if msg.rma_offset and msg.rma_offset + msg.size > recv.capacity:
            raise NicError(
                f"directed send past the window end: offset {msg.rma_offset} "
                f"+ size {msg.size} > capacity {recv.capacity}"
            )
        truncated = msg.size > recv.capacity
        nbytes = min(msg.size, recv.capacity)
        if msg.data is not None and recv.dest_sg is not None:
            # DMA scatter: distribute the payload's chunk views straight
            # into the destination segments — no intermediate bytes.
            self.phys.write_phys_sg(
                recv.dest_sg, msg.data.slice(0, nbytes), skip=msg.rma_offset
            )
        completion = ReceiveCompletion(
            tag=recv.tag,
            size=nbytes,
            match=msg.match,
            src_nic=msg.src_nic,
            src_port=msg.src_port,
            data=msg.data.slice(0, nbytes) if (recv.keep_data and msg.data is not None) else None,
            finished_at=self.env.now,
            truncated=truncated,
            meta=msg.meta,
        )
        self._m_rx.inc()
        self._m_rx_bytes.inc(nbytes)
        obs.instant(
            self.env, "nic", f"rx.{msg.kind.value}",
            pid=self.node_id, tid=msg.dst_port,
            size=nbytes, src=msg.src_nic,
        )
        if recv.completion is not None and not recv.persistent:
            recv.completion.succeed(completion)
        if port.completion_sink is not None and not recv.persistent:
            # RMA deposits are silent at the target (GM directed-send
            # semantics): no event is raised for persistent windows.
            port.completion_sink(completion)

    # -- host-side convenience (used by API layers) --------------------------

    def doorbell_time_ns(self) -> int:
        return self.params.doorbell_ns

    def eager_one_way_floor_ns(self, size: int) -> int:
        """Analytic lower bound of the fabric time for an eager message
        (useful in tests as a sanity reference, not used by the model)."""
        p = self.params
        return (
            p.doorbell_ns
            + 2 * p.dma_setup_ns
            + p.link.cut_through_lag_ns
            + transfer_time_ns(size, p.link.link_bandwidth)
            + p.link.propagation_ns
        )
