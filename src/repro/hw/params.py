"""Calibration constants — the single source of truth for all cost models.

Every number here is either taken directly from the paper, derived from
one of its figures, or a standard figure for 2005-era hardware; the
provenance is documented next to each constant.  The reproduction's
*shape* claims (who wins, by what factor, where crossovers fall) come
from the interaction of these costs inside the simulated pipelines, not
from baking in the paper's result numbers.

Anchor points (paper section 5 unless noted):

========================  =========  =====================================
quantity                   value      provenance
========================  =========  =====================================
GM user 1-byte latency     6.7 us     section 5.1
MX user 1-byte latency     4.2 us     section 5.1
GM kernel latency penalty  +2 us      section 5.1 ("2 us higher")
NIC translation lookup     0.5 us     section 3.3 (per side, 10 % gain)
GM registration            3 us/page  section 2.2.2
GM deregistration base     200 us     section 2.2.2, figure 1(b)
PCI-XD link                250 MB/s   section 3.1
PCI-XE link                500 MB/s   section 5.3
syscall                    ~400 ns    section 5.3
MX medium window           128B-32kB  section 5.1
MX send-copy removal       +17%@32kB  section 5.1, figure 6 (calibrates
                                      the in-driver copy bandwidth)
========================  =========  =====================================

One-byte one-way latency decomposes in the NIC pipeline as::

    host_send + doorbell + fw_send + tx_translation + dma_setup
    + cut_through_lag + wire(size) + propagation
    + fw_recv + rx_translation + dma_setup + host_event

with the fabric-side constants summing to doorbell 300 + 2*dma_setup 200
+ lag 200 + propagation 500 = 1400 ns.  The per-API budgets below then
reproduce the paper's measured latencies exactly:

    MX  (user=kernel):  900+550+550+ 800 + 0    + 1400 = 4200 ns
    GM  user         : 1200+900+900+1300 + 1000 + 1400 = 6700 ns
    GM  kernel       : 2200+900+900+2300 + 1000 + 1400 = 8700 ns
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import GB, MB, us

# ---------------------------------------------------------------------------
# CPUs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CpuParams:
    """Host CPU cost model.

    Copies have two regimes: buffers up to ``copy_cache_threshold`` move
    at ``copy_bandwidth_cached`` (data stays in L2), larger copies
    stream from memory at ``copy_bandwidth_stream``.  The two-regime
    model is what lets figure 6's copy-removal gains be ~9 % for one
    page but ~17 % at 32 kB, as the paper measures.
    """

    name: str
    copy_bandwidth_cached: float  # bytes/s for small (cache-resident) copies
    copy_bandwidth_stream: float  # bytes/s for large streaming copies
    copy_cache_threshold: int  # bytes
    copy_setup_ns: int
    pin_page_ns: int  # get_user_pages per page (fault-in excluded)
    syscall_ns: int  # user<->kernel boundary crossing
    vfs_traversal_ns: int  # VFS layer cost per file-access syscall


# Figure 1(b): copying 256 kB costs ~250 us on the P3 (~1.0 GB/s) and
# ~100 us on the P4 (~2.6 GB/s).
HOST_P3_1200 = CpuParams(
    name="PentiumIII-1.2GHz",
    copy_bandwidth_cached=1.6 * GB,
    copy_bandwidth_stream=1.0 * GB,
    copy_cache_threshold=8 * 1024,
    copy_setup_ns=150,
    pin_page_ns=300,
    syscall_ns=700,
    vfs_traversal_ns=2500,
)

HOST_P4_2600 = CpuParams(
    name="Pentium4-2.6GHz",
    copy_bandwidth_cached=4.0 * GB,
    copy_bandwidth_stream=2.6 * GB,
    copy_cache_threshold=8 * 1024,
    copy_setup_ns=100,
    pin_page_ns=200,
    syscall_ns=450,
    vfs_traversal_ns=1800,
)

# The evaluation platform: 2.6 GHz dual Xeon, 2 GB RAM (section 3.1).
# In-driver copies are slower than a tight userspace memcpy (chunked
# bookkeeping, cache pollution); 1.05 GB/s streaming reproduces the
# ~17 % send-copy share of a 32 kB MX medium message (figure 6).
HOST_XEON_2600 = CpuParams(
    name="Xeon-2.6GHz",
    copy_bandwidth_cached=2.2 * GB,
    copy_bandwidth_stream=1.05 * GB,
    copy_cache_threshold=8 * 1024,
    copy_setup_ns=100,
    pin_page_ns=150,
    syscall_ns=400,  # section 5.3: "about 400 ns"
    vfs_traversal_ns=1500,
)


# ---------------------------------------------------------------------------
# Links and PCI
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinkParams:
    """One Myrinet link generation + the PCI bus feeding it."""

    name: str
    link_bandwidth: float  # bytes/s, full duplex per direction
    pci_bandwidth: float  # bytes/s
    propagation_ns: int  # cable + switch crossing
    cut_through_lag_ns: int  # store-and-forward lag before wire starts


# PCI-XD: "This network can sustain 250 MB/s full-duplex" (section 3.1);
# the card sits on 64-bit/66 MHz PCI (528 MB/s peak), so PCI does not
# bottleneck the link.
PCI_XD = LinkParams(
    name="PCI-XD",
    link_bandwidth=250 * MB,
    pci_bandwidth=528 * MB,
    propagation_ns=500,
    cut_through_lag_ns=200,
)

# PCI-XE: "these cards can sustain 500 MB/s full-duplex by using two
# links" (section 5.3); PCI-X 133 feeds them at ~1067 MB/s peak.
PCI_XE = LinkParams(
    name="PCI-XE",
    link_bandwidth=500 * MB,
    pci_bandwidth=1067 * MB,
    propagation_ns=500,
    cut_through_lag_ns=200,
)


def trunk_params(base: LinkParams, propagation_ns: int) -> LinkParams:
    """A switch-to-switch trunk of the same link generation.

    Same serialization rate as the host links (Myrinet fabrics are
    homogeneous per generation), longer cable.  Inter-pod trunks use a
    multiple of the host propagation: physically they leave the rack,
    and for the sharded engine a longer wire *is* the conservative
    lookahead window (``repro.sim.border``), so cutting a fabric at its
    inter-pod trunks gives each synchronization window several times
    more room than cutting a host link would.
    """
    from dataclasses import replace

    return replace(base, name=f"{base.name}-trunk", propagation_ns=propagation_ns)


# ---------------------------------------------------------------------------
# Fabric topologies (repro.cluster.topo) and the hybrid flow engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricParams:
    """Shape-independent knobs of a multi-switch fabric.

    ``routing`` selects the multi-path policy of every switch:
    ``"ecmp"`` (deterministic flow hashing — see
    :func:`repro.hw.wire.ecmp_hash`) or ``"adaptive"`` (least-queued
    egress among the equal-cost candidates, skipping down links; state-
    dependent, so the analytic flow engine declines those paths).

    ``egress_buffer_bytes`` bounds each output port's occupancy (queued
    plus in-service bytes).  ``None`` — the default — models the
    unbounded egress the single-switch star always had; a finite buffer
    makes the switch drop-tail excess packets and count them as
    ``switch.congestion_drops`` (backpressure is left to the NIC
    reliability layer, exactly like carrier-loss drops).

    ``intra_propagation_ns``/``inter_propagation_ns`` are the trunk
    cable lengths inside a pod/group and between pods/groups; the
    inter-pod figure is deliberately fat (see :func:`trunk_params`).
    """

    routing: str = "ecmp"
    ecmp_seed: int = 1
    crossing_ns: int = 300
    egress_buffer_bytes: int | None = None
    intra_propagation_ns: int = 500
    inter_propagation_ns: int = 2000


DEFAULT_FABRIC = FabricParams()


@dataclass(frozen=True)
class FlowParams:
    """Calibration of the analytic flow fast path (:mod:`repro.hw.flow`).

    ``min_flow_frags``: below this many FRAG pacing packets the
    reservation bookkeeping costs more events than it saves and the
    packet-train path is already cheap; such messages never become
    flows.

    ``interloper_threshold_bytes``: non-flow bytes tolerated on a
    reserved link direction within one reservation epoch (between flow
    arrivals/departures on that direction) before the contention is
    considered observable and every flow on the direction de-coalesces.
    Below the threshold the model ignores the bandwidth the interloper
    took, so the threshold *is* the documented equivalence bound: a
    flow's completion may be early by at most the serialization time of
    these bytes per hop.  The default (16 MTUs) comfortably absorbs
    final packets and control traffic of neighbouring transfers without
    letting a competing bulk stream go unnoticed.
    """

    min_flow_frags: int = 8
    interloper_threshold_bytes: int = 64 * 1024


DEFAULT_FLOW = FlowParams()


# ---------------------------------------------------------------------------
# NIC / firmware
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NicParams:
    """LANai firmware processing costs and translation-table geometry."""

    link: LinkParams
    translation_lookup_ns: int = 500  # section 3.3: 0.5 us saved per side
    translation_table_entries: int = 4096  # bounded (section 2.2.2)
    translation_install_ns: int = 1000  # NIC share of the 3 us/page cost
    dma_setup_ns: int = 200
    doorbell_ns: int = 300  # host PIO write ringing the send queue
    ctrl_message_bytes: int = 32  # RTS/CTS rendezvous control size
    # Wire packet size: messages fragment to this on the wire so
    # switches forward packet-by-packet (wormhole-style pipelining).
    mtu_bytes: int = 4096


@dataclass(frozen=True)
class ApiCosts:
    """Host-side and firmware costs specific to one API in one context.

    These are what make GM != MX and user != kernel: the NIC hardware is
    identical, the software stacks are not (see the module docstring for
    the latency decomposition these budgets reproduce).

    ``blocking_wakeup_ns`` is the cost of being woken from a blocking
    wait, on top of ``host_event_ns`` (which is the polling-mode pickup
    measured by ping-pong benchmarks).  The paper attributes much of
    SOCKETS-GM's and ORFS/GM's overhead to GM's "limited completion
    notification mechanisms" versus MX letting callers "wait on a single
    or any pending request" (sections 5.2-5.3); that asymmetry lives
    here.
    """

    name: str
    host_send_ns: int  # library/driver work to post a send
    host_recv_post_ns: int  # work to post a receive buffer
    host_event_ns: int  # completion pickup by polling
    blocking_wakeup_ns: int  # extra cost when blocking-waiting
    fw_send_ns: int  # firmware work per outgoing message
    fw_recv_ns: int  # firmware work per incoming message
    uses_translation: bool  # NIC translates virtual addresses per side


GM_USER_COSTS = ApiCosts(
    name="gm-user",
    host_send_ns=1200,
    host_recv_post_ns=600,
    host_event_ns=1300,
    # gm_blocking_receive parks the caller and wakes it for *any* event;
    # the sleep/wake round costs ~3 us on a 2.4 kernel.  MX's targeted
    # per-request wakeup (mx_wait) is far cheaper.
    blocking_wakeup_ns=3000,
    fw_send_ns=900,
    fw_recv_ns=900,
    uses_translation=True,
)

GM_KERNEL_COSTS = ApiCosts(
    name="gm-kernel",
    host_send_ns=2200,  # +1 us: kernel entry points not optimized
    host_recv_post_ns=800,
    host_event_ns=2300,  # +1 us: event dispatch via callbacks
    # Delivering a completion to a *sleeping* in-kernel caller costs GM a
    # dispatch hop (wake the event handler, then the waiter): a full
    # context switch, ~4 us on the era's kernels.  ORFS and SOCKETS-GM
    # pay this on every message (sections 5.2-5.3); polling ping-pong
    # benchmarks do not.
    blocking_wakeup_ns=4000,
    fw_send_ns=900,
    fw_recv_ns=900,
    uses_translation=True,
)

# MX: "latency and bandwidth do not differ between user and kernel
# communications" (section 5.1) — one cost set serves both contexts.
MX_USER_COSTS = ApiCosts(
    name="mx-user",
    host_send_ns=900,
    host_recv_post_ns=500,
    host_event_ns=800,
    blocking_wakeup_ns=200,  # flexible wait-one/wait-any (section 5.2)
    fw_send_ns=550,
    fw_recv_ns=550,
    uses_translation=False,  # the NIC manipulates only physical addresses
)

MX_KERNEL_COSTS = ApiCosts(
    name="mx-kernel",
    host_send_ns=900,
    host_recv_post_ns=500,
    host_event_ns=800,
    blocking_wakeup_ns=200,
    fw_send_ns=550,
    fw_recv_ns=550,
    uses_translation=False,
)


# ---------------------------------------------------------------------------
# Firmware reliable delivery (GM's MCP guarantees; engaged by fault plans)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityParams:
    """GM-firmware-style reliable delivery: per-peer sequence numbers,
    cumulative acks, timeout-driven go-back-N retransmission with
    exponential backoff, duplicate suppression.

    The sublayer is *off by default* — the perfect-fabric figures stay
    byte-identical — and is enabled by :class:`repro.faults.FaultPlan`
    when the simulated fabric becomes lossy.  Timescales follow real
    firmware practice: the RTO sits two orders of magnitude above the
    one-way latency so retransmission never fires on an intact fabric.
    """

    rto_ns: int = us(150)  # base retransmission timeout (RTT is ~10-20 us)
    rto_max_ns: int = us(2400)  # exponential backoff cap
    max_retries: int = 12  # give-up budget per peer before declaring it dead
    ack_delay_ns: int = 2000  # delayed-ack coalescing window
    ack_fw_ns: int = 250  # firmware cost of emitting a standalone ack
    retransmit_fw_ns: int = 400  # firmware cost per retransmitted packet
    #: How long a dead-peer verdict stands before the next submit probes
    #: the peer again (a link that flapped long enough to burn the retry
    #: budget leaves both endpoints alive but mutually "dead"; probing
    #: after the TTL heals them).  0 — the default — keeps verdicts
    #: permanent: only an incarnation change lifts them.
    dead_peer_ttl_ns: int = 0


DEFAULT_RELIABILITY = ReliabilityParams()


# ---------------------------------------------------------------------------
# GM registration (section 2.2.2, figure 1(b))
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegistrationParams:
    """GM memory registration/deregistration cost model."""

    register_base_ns: int = us(5)
    register_per_page_ns: int = us(3)  # "3 us overhead per page registration"
    deregister_base_ns: int = us(200)  # "200 us base for deregistration"
    deregister_per_page_ns: int = 300


GM_REGISTRATION = RegistrationParams()


# ---------------------------------------------------------------------------
# MX message-class strategy (section 5.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MxStrategyParams:
    """Boundaries and costs of MX's small/medium/large message handling."""

    small_max: int = 128  # at or below: programmed I/O
    medium_max: int = 32 * 1024  # "from 128 bytes to 32 kB": bounce copies
    # Large messages go through an RTS/CTS rendezvous (real control
    # messages on the simulated wire) plus a one-time DMA-program setup.
    # "Large message processing in MX is still under strong development"
    # (section 5.1) is why this setup is generous.
    large_setup_ns: int = us(15)


MX_STRATEGY = MxStrategyParams()


# ---------------------------------------------------------------------------
# Host assembly
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostParams:
    """Everything describing one cluster node's hardware."""

    cpu: CpuParams = HOST_XEON_2600
    nic: NicParams = field(default_factory=lambda: NicParams(link=PCI_XD))
    cpu_cores: int = 2  # dual-Xeon nodes (section 3.1)
    memory_frames: int = 131072  # 512 MB of 4 kB frames: ample for tests


def host_params(
    link: LinkParams = PCI_XD,
    cpu: CpuParams = HOST_XEON_2600,
    memory_frames: int = 131072,
) -> HostParams:
    """Convenience constructor for a host on the given link generation."""
    return HostParams(cpu=cpu, nic=NicParams(link=link), memory_frames=memory_frames)
