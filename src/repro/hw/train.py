"""Packet trains: analytic coalescing of FRAG wire traffic.

A fragmented message puts ``n-1`` FRAG packets on the wire before the
final (semantic) packet.  FRAGs exist purely to pace the fabric at MTU
granularity — they carry no payload, are never sequenced by reliable
delivery, are passed untouched by fault injectors, and are discarded at
the destination NIC.  On an idle, fault-free path their effect is
therefore *closed-form*: back-to-back serialization slots on every hop,
each ``serialization_ns(mtu)`` long.

A :class:`PacketTrain` is one wire item standing in for that whole FRAG
burst.  The emitting NIC puts it on the wire when the path segment is
eligible (see ``Link.train_block_reason``); each hop holds its output
for the analytic occupancy in a single timed event instead of one event
chain per packet, and the train *de-coalesces* back to per-packet
simulation the moment anything could make per-packet behaviour
observable:

* the link is busy or has waiters when the burst would start (the NIC
  falls back to the classic per-packet loop — exact by construction);
* a fault injector sits on the link (per-packet drop sampling and down
  windows must see the same item sequence as the seed's trace);
* a tracer subscription ``wants()`` per-packet ``"wire"`` records;
* a competing flow requests the held direction mid-train (the holder
  finishes the packet slot in progress, releases at that packet
  boundary — exactly where the per-packet loop would have yielded the
  wire — and the remaining packets are re-emitted per-packet behind the
  competitor);
* a switch output port paces differently than the input (never happens
  with uniform ``LinkParams``, but checked).

When an upstream hop splits mid-train, downstream hops are told with a
:class:`TrainTruncation` notice delivered at the moment the absence of
packet ``k+1`` becomes observable there (one propagation delay after
the split boundary); it consumes no wire resources, mirroring
information the per-packet simulation carries implicitly.

Both classes advertise ``kind = MsgKind.FRAG`` so every existing FRAG
rule applies unchanged: fault filters pass them through, reliability
never sequences them, and the destination NIC's receive loop discards
them.

The module-level switch (:func:`set_coalescing`) exists for A/B
equivalence testing and the perf benchmark; the default is on.

One level further up sits the flow engine (:mod:`repro.hw.flow`): where
a train coalesces one message's FRAG burst *per hop*, a flow reservation
coalesces the whole burst *across the path*, and de-coalesces back to
trains/packets by the same playbook (its remainder re-enters this
module's machinery untouched).  Trains and flows share one id space
(:func:`next_transit_id`) so a switch's in-flight transit registry can
never alias a re-emitted train of a de-coalesced flow with the flow
itself.
"""

from __future__ import annotations

import itertools

from .wire import MsgKind

#: Below this many FRAGs the analytic path saves nothing worth the
#: bookkeeping; such messages always take the per-packet loop.
MIN_TRAIN_FRAGS = 2

_train_ids = itertools.count(1)


def next_transit_id() -> int:
    """Next id from the shared train/flow transit id space."""
    return next(_train_ids)

_enabled = True


def set_coalescing(enabled: bool) -> None:
    """Globally force packet-train coalescing on (default) or off.

    Off means every fragmented message takes the per-packet loop —
    the A/B reference mode for equivalence tests and ``repro.bench.perf``.
    """
    global _enabled
    _enabled = bool(enabled)


def coalescing_enabled() -> bool:
    return _enabled


class PacketTrain:
    """One wire item standing in for ``npackets`` back-to-back FRAGs.

    Carries exactly the addressing fields a FRAG would; ``wire_size``
    is the per-packet size (the MTU), not the train total.  Delivered
    to the next hop at *first*-packet arrival time (cut-through), so
    downstream forwarding starts exactly when per-packet forwarding
    would have.
    """

    __slots__ = ("src_nic", "src_port", "dst_nic", "dst_port", "match",
                 "npackets", "wire_size", "train_id")

    #: Class attribute, deliberately: every FRAG special case in the
    #: fault filter, reliability layer and NIC receive loop applies.
    kind = MsgKind.FRAG

    def __init__(self, src_nic: int, src_port: int, dst_nic: int,
                 dst_port: int, match: int, npackets: int, wire_size: int):
        self.src_nic = src_nic
        self.src_port = src_port
        self.dst_nic = dst_nic
        self.dst_port = dst_port
        self.match = match
        self.npackets = npackets
        self.wire_size = wire_size
        self.train_id = next_transit_id()


class TrainTruncation:
    """Downstream notice that a train was cut to ``npackets`` upstream.

    Travels outside the bandwidth model (no serialization, no
    counters): it encodes the *absence* of packets, which costs nothing
    on a real wire.  Destination NICs ignore it like any FRAG; switches
    use it to cap the analytic hold / cancel scheduled per-packet
    forwards for packets that never entered the fabric.
    """

    __slots__ = ("train_id", "npackets", "src_nic", "dst_nic")

    kind = MsgKind.FRAG

    def __init__(self, train_id: int, npackets: int, src_nic: int, dst_nic: int):
        self.train_id = train_id
        self.npackets = npackets
        self.src_nic = src_nic
        self.dst_nic = dst_nic


class TrainRun:
    """Shared mutable state of one train's transit across one hop.

    The hop's ``Link.transmit_train`` generator sleeps on ``wake``;
    a competitor queueing on the held direction (:meth:`notify_contention`)
    or an upstream :class:`TrainTruncation` (:meth:`truncate`) nudges it
    awake to re-plan.  After a hop de-coalesces, ``limit`` caps which
    scheduled per-packet forwards still fire.
    """

    __slots__ = ("limit", "contended", "wake")

    def __init__(self, limit: int):
        self.limit = limit
        self.contended = False
        self.wake = None

    def notify_contention(self) -> None:
        self.contended = True
        wake = self.wake
        if wake is not None and not wake.triggered:
            wake.succeed()

    def truncate(self, npackets: int) -> None:
        if npackets < self.limit:
            self.limit = npackets
            wake = self.wake
            if wake is not None and not wake.triggered:
                wake.succeed()
