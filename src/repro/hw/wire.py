"""Wire-level message kinds.

Lives in its own leaf module so both the NIC model (:mod:`repro.hw.nic`)
and the packet-train machinery (:mod:`repro.hw.train`, imported by
:mod:`repro.hw.link`) can name the FRAG kind without an import cycle.
The public home of the enum remains ``repro.hw.nic.MsgKind``.
"""

from __future__ import annotations

import enum


class MsgKind(enum.Enum):
    """Wire message types."""

    EAGER = "eager"  # data travels immediately
    RTS = "rts"  # rendezvous request-to-send (control)
    CTS = "cts"  # rendezvous clear-to-send (control)
    RDATA = "rdata"  # rendezvous data (pre-matched at the receiver)
    FRAG = "frag"  # a non-final packet of a fragmented message
    ACK = "ack"  # reliable-delivery cumulative acknowledgement (control)
