"""Wire-level message kinds and the ECMP flow hash.

Lives in its own leaf module so both the NIC model (:mod:`repro.hw.nic`)
and the packet-train machinery (:mod:`repro.hw.train`, imported by
:mod:`repro.hw.link`) can name the FRAG kind without an import cycle.
The public home of the enum remains ``repro.hw.nic.MsgKind``.

:func:`ecmp_hash` also lives here because it defines the *flow
identity* shared by three layers that must agree on it: the switch
(:mod:`repro.hw.switch`) hashes it to pick among equal-cost ports, the
flow engine (:mod:`repro.hw.flow`) replays the same hash to freeze a
flow's path, and FRAG pacing packets carry exactly the same four
addressing fields as their final packet so every packet of one message
takes one path (no reordering across equal-cost paths).
"""

from __future__ import annotations

import enum

_M64 = (1 << 64) - 1


class MsgKind(enum.Enum):
    """Wire message types."""

    EAGER = "eager"  # data travels immediately
    RTS = "rts"  # rendezvous request-to-send (control)
    CTS = "cts"  # rendezvous clear-to-send (control)
    RDATA = "rdata"  # rendezvous data (pre-matched at the receiver)
    FRAG = "frag"  # a non-final packet of a fragmented message
    ACK = "ack"  # reliable-delivery cumulative acknowledgement (control)


def ecmp_hash(src_nic: int, src_port: int, dst_nic: int, dst_port: int,
              seed: int) -> int:
    """Deterministic 64-bit hash of one flow's addressing 4-tuple.

    splitmix64-style finalizer over a weighted sum of the fields.  The
    ``seed`` is per-switch (derived from the fabric seed and the switch
    index by the topology builder), so consecutive hops decorrelate —
    hashing the same tuple with one shared seed at every hop would send
    *all* flows that collided at hop ``h`` to the same candidate at hop
    ``h+1`` (CONGA calls this hash polarization).  Python's builtin
    ``hash()`` is unsuitable: it is salted per process.
    """
    x = (seed * 0x9E3779B97F4A7C15
         + (src_nic + 1) * 0xBF58476D1CE4E5B9
         + (src_port + 1) * 0x94D049BB133111EB
         + (dst_nic + 1) * 0xD6E8FEB86659FD93
         + (dst_port + 1) * 0xFF51AFD7ED558CCD) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x
