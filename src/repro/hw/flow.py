"""Analytic flow reservations: the hybrid fidelity engine.

Packet-train coalescing (:mod:`repro.hw.train`) collapses one message's
FRAG burst into one analytic hold *per hop* — the event count still
scales with hops × messages, and under contention trains split back to
per-packet immediately.  This module takes the idea to its logical end
for fabric-scale workloads: a long transfer on an uncontended or
*stably shared* multi-hop path becomes one **flow reservation** — a
rate share on every hop plus a single completion timer for the whole
network — with **max-min fair** recomputation whenever a flow arrives
or departs.  A 256 KiB transfer across a four-hop fat-tree costs a
handful of events instead of hundreds.

The price of the analytic view is observability, so any event that
makes individual packets observable de-coalesces the flow back to
packet/train fidelity at the next packet boundary, exactly as a
:class:`~repro.hw.train.TrainTruncation` caps a train today:

* **fault injection on the path** — a down window opening on any
  switch-egress hop (a guard is scheduled at the onset when the flow is
  admitted; the per-hop drop checks must see the same packet sequence
  per-packet simulation would).  Host-uplink down windows are ignored:
  fault filters pass FRAGs untouched, so per-packet simulation delivers
  them regardless and only the final (non-analytic) packet is at risk;
* **a tracer that wants "wire" records** — refused at admission
  (``train_block_reason`` reports it), same rule as trains;
* **contention crossing a threshold** — packets transmitted by
  non-flow traffic on a reserved direction ("interlopers") accumulate;
  past ``FlowParams.interloper_threshold_bytes`` in one reservation
  epoch the sharing is no longer *stable* and every flow on the
  direction de-coalesces;
* **a sharded border link** — refused at admission (the reservation
  needs a global view of the path; ``Link.is_border``).

Equivalence contract (verified by tests/test_flow.py):

* a flow that never shares a hop has rate ``wire_size/per`` with
  ``per`` the integer per-packet serialization, so its completion time
  is *exactly* ``start + npackets*per`` — bit-identical to the train
  and per-packet modes, including the final packet that always travels
  per-packet behind it;
* a pristine (never-shared) flow de-coalescing on a down-window onset
  re-materializes its in-flight packets per hop at exactly the instants
  their egress requests would have fired, so traces, drops and byte
  counters from the fault onward are byte-identical to packet mode;
* shared flows are max-min fair with exact :class:`fractions.Fraction`
  arithmetic (deterministic across platforms); their completion times
  are equivalent to packet fidelity within the documented interloper
  threshold, and their de-coalescing lands on the analytic packet
  boundary rather than the per-hop pipeline state.

All bookkeeping uses exact rationals; no floats touch the clock.

Rate allocation is **incremental and component-local**: an arrival,
departure or de-coalescing only re-divides the connected component of
flows reachable from the touched link directions through shared hops —
a disjoint permutation pair costs O(1), not O(n).  The water-fill
inside a component selects each level's bottleneck with integer
cross-multiplication (no per-direction ``Fraction`` division) and
commits the level share as one canonical ``Fraction``, so every
``rate``/``eta``/``done`` value is bit-identical to the from-scratch
global algorithm (:func:`waterfill_reference`, which the property tests
compare against): the max-min rate vector is unique, and untouched
components keep rates — and therefore ETAs and settled progress —
unchanged by definition.

:func:`set_flow_mode` mirrors :func:`repro.hw.train.set_coalescing` —
the A/B switch for equivalence tests and ``repro.bench.perf``.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from heapq import heappop, heappush
from typing import Callable, Iterable, Optional

from .. import obs
from ..sim import Environment
from .nic import Message, MsgKind
from .params import DEFAULT_FLOW, FlowParams

#: Histogram buckets for analytic flow lengths (packets).
FLOW_LEN_BUCKETS = (16, 64, 256, 1024, 4096)

_enabled = True


def set_flow_mode(enabled: bool) -> None:
    """Globally force analytic flow reservations on (default) or off.

    Off means fabric transfers fall back to packet-train / per-packet
    fidelity — the A/B reference for equivalence tests and the perf
    benchmark.  Mirrors :func:`repro.hw.train.set_coalescing`.
    """
    global _enabled
    _enabled = bool(enabled)


def flow_mode_enabled() -> bool:
    return _enabled


def _ceil(q: Fraction) -> int:
    return -int((-q) // 1)


class _DirRes:
    """One reserved link direction: capacity, member flows, interloper
    accumulator for the current reservation epoch."""

    __slots__ = ("link", "dir_key", "cap", "members", "acc", "seq")

    def __init__(self, link, dir_key: str, cap: Fraction, seq: int):
        self.link = link
        self.dir_key = dir_key
        self.cap = cap  # bytes/ns, derived from the integer per-packet time
        self.members: list[_Flow] = []
        self.acc = 0  # interloper bytes this epoch
        self.seq = seq  # deterministic tie-break order


class LinkFlows:
    """Per-link flow state, stored as ``link.flows``.

    ``Link.transmit`` calls :meth:`note_interloper` once per packet on a
    direction; ``Link.train_block_reason`` consults :meth:`reserved`.
    Both are one dict lookup when no reservation is active.
    """

    __slots__ = ("net", "dirs")

    def __init__(self, net: "FlowNetwork"):
        self.net = net
        self.dirs: dict[str, _DirRes] = {}

    def reserved(self, dir_key: str) -> bool:
        dr = self.dirs.get(dir_key)
        return dr is not None and bool(dr.members)

    def note_interloper(self, dir_key: str, nbytes: int) -> None:
        dr = self.dirs.get(dir_key)
        if dr is None or not dr.members:
            return
        dr.acc += nbytes
        if dr.acc > self.net.params.interloper_threshold_bytes:
            dr.acc = 0
            self.net._decoalesce_members(dr, "contention")


class _Flow:
    """One admitted reservation."""

    __slots__ = ("id", "src_nic", "src_port", "dst_nic", "dst_port", "match",
                 "npackets", "wire_size", "total", "hops", "dirres", "start",
                 "per", "uniform", "full_rate", "rate", "done", "last", "eta",
                 "pristine", "wake", "carried")

    def __init__(self, fid: int, src_nic: int, desc, npackets: int,
                 wire_size: int, hops, dirres, start: int):
        self.id = fid
        self.src_nic = src_nic
        self.src_port = desc.src_port
        self.dst_nic = desc.dst_nic
        self.dst_port = desc.dst_port
        self.match = desc.match
        self.npackets = npackets
        self.wire_size = wire_size
        self.total = npackets * wire_size  # bytes carried analytically
        self.hops = hops  # list of (link, from_end, switch-or-None)
        self.dirres = dirres  # parallel list of _DirRes
        self.start = start
        pers = [link.serialization_ns(wire_size) for link, _e, _s in hops]
        self.per = max(pers)  # bottleneck pacing
        self.uniform = all(p == pers[0] for p in pers)
        self.full_rate = min(dr.cap for dr in dirres)
        self.rate = Fraction(0)
        self.done = Fraction(0)  # bytes
        self.last = start
        self.eta: Optional[int] = None
        self.pristine = True
        self.wake = None
        self.carried = 0


def waterfill_reference(flows: Iterable[_Flow]) -> dict[int, Fraction]:
    """From-scratch global max-min water-fill over ``flows``.

    This is the original O(flows × dirs × levels) algorithm, kept as a
    pure function (no flow state is mutated) so the incremental
    component-local engine can be checked against it: set
    ``FlowNetwork._verify_reference = True`` and every flush asserts
    that all committed rates equal this reference exactly, as
    ``Fraction`` values.  The max-min rate vector is unique — after one
    member of a bottleneck is fixed at ``avail/count`` the remaining
    members still sit at ``(avail - share)/(count - 1) == share`` — so
    any tie-break or component order must land on these rates.
    """
    flows = list(flows)
    rates: dict[int, Fraction] = {}
    if not flows:
        return rates
    dirs: dict[int, _DirRes] = {}
    count: dict[int, int] = {}
    avail: dict[int, Fraction] = {}
    for f in flows:
        for dr in f.dirres:
            if dr.seq not in dirs:
                dirs[dr.seq] = dr
                count[dr.seq] = 0
                avail[dr.seq] = dr.cap
            count[dr.seq] += 1
    unfixed = {f.id for f in flows}
    order = sorted(dirs)
    while unfixed:
        bottleneck = None
        share = None
        for seq in order:
            if count[seq] <= 0:
                continue
            s = avail[seq] / count[seq]
            if share is None or s < share:
                share, bottleneck = s, seq
        if bottleneck is None:  # pragma: no cover - defensive
            break
        for f in dirs[bottleneck].members:
            if f.id in unfixed:
                rates[f.id] = share
                unfixed.discard(f.id)
                for dr in f.dirres:
                    avail[dr.seq] -= share
                    count[dr.seq] -= 1
    return rates


class FlowNetwork:
    """The fabric-wide reservation table and its single timer.

    Created by :class:`repro.cluster.topo.Fabric`; NICs reach it through
    their ``flownet`` attribute (``None`` outside fabrics, so the paper's
    two-node and star figures never touch this code).
    """

    #: Debug hook: when True, every flush re-derives all rates with
    #: :func:`waterfill_reference` and asserts exact equality.
    _verify_reference = False

    def __init__(self, env: Environment, params: FlowParams = DEFAULT_FLOW,
                 path_fn: Optional[Callable] = None, name: str = "fab"):
        self.env = env
        self.params = params
        self.name = name
        #: ``path_fn(src_nic, src_port, dst_nic, dst_port)`` returns the
        #: frozen ECMP path as ``[(link, from_end, switch-or-None), ...]``
        #: or ``None`` when no stable path exists (adaptive routing).
        self.path_fn = path_fn
        self._flows: dict[int, _Flow] = {}
        self._ids = itertools.count(1)
        self._dir_seq = itertools.count()
        self._timer_gen = 0
        self._dirty = False
        # Directions whose membership changed since the last flush, in
        # touch order (deterministic: driven by the event schedule).
        self._touched: list[_DirRes] = []
        self._touched_seqs: set[int] = set()
        # Lazy global ETA heap: one (eta, flow id) entry pushed per ETA
        # assignment; entries whose flow is gone or re-timed are dropped
        # when they surface.
        self._eta_heap: list[tuple[int, int]] = []
        self._m_flows = obs.counter("net.flows", fabric=name)
        self._m_active = obs.gauge("net.flows_active", fabric=name)
        self._m_flush = obs.counter("net.flow_flush", fabric=name)
        self._m_recompute = obs.counter("net.flow_recompute", fabric=name)
        # Water-fill work accounting: flows actually re-divided per
        # flush vs. what the global algorithm would have re-divided.
        # The ratio is the CI-gated work-reduction floor.
        self._m_wf_touched = obs.counter("net.flow_waterfill_flows",
                                         fabric=name, scope="touched")
        self._m_wf_global = obs.counter("net.flow_waterfill_flows",
                                        fabric=name, scope="global")

    # -- admission ---------------------------------------------------------

    def carry(self, nic, desc, remaining: int, mtu: int):
        """Generator (runs inside the NIC's transmit process): try to
        carry the FRAG burst of ``desc`` as one analytic flow.

        The reservation covers the first ``nfrags - 1`` pacing packets;
        the last FRAG always travels per-packet (emitted by the caller's
        loop when this returns).  That trailing real packet recreates
        the per-hop back-pressure of the drained pipeline: on every hop
        it occupies the wire exactly where packet-mode FRAG ``n`` would,
        so the semantic final packet queues behind it and completes at
        the identical instant — without the flow having to model
        downstream holds at all.

        Returns the bytes still to send: refused flows return
        ``remaining`` unchanged, de-coalesced flows return the
        per-packet tail, completed flows return the trailing FRAG plus
        the final packet."""
        if not _enabled or self.path_fn is None:
            return remaining
        nfrags = (desc.size - 1) // mtu
        if nfrags < self.params.min_flow_frags:
            return remaining
        path = self.path_fn(nic.node_id, desc.src_port, desc.dst_nic,
                            desc.dst_port)
        reason = None
        if path is None:
            reason = "routing"
        else:
            for link, end, _sw in path:
                if link.is_border:
                    reason = "border"
                    break
                if link.is_down:
                    reason = "down"
                    break
                why = link.train_block_reason(end)
                if why in ("busy", "wire_trace"):
                    # "faults" (armed injector, FRAG-exempt) and "flow"
                    # (stable sharing) do not disqualify a reservation.
                    reason = why
                    break
        if reason is not None:
            obs.counter("net.flow_refused", fabric=self.name,
                        reason=reason).inc()
            return remaining
        flow = self._admit(nic, desc, nfrags - 1, mtu, path)
        yield flow.wake
        if flow.carried:
            obs.histogram("net.flow_len", buckets=FLOW_LEN_BUCKETS,
                          fabric=self.name).observe(flow.carried)
        return remaining - flow.carried * mtu

    def _admit(self, nic, desc, nfrags: int, mtu: int, path) -> _Flow:
        env = self.env
        now = env.now
        dirres = []
        for link, end, _sw in path:
            lf = link.flows
            if lf is None:
                lf = link.flows = LinkFlows(self)
            dir_key = "ab" if end == "a" else "ba"
            dr = lf.dirs.get(dir_key)
            if dr is None:
                per = link.serialization_ns(mtu)
                dr = lf.dirs[dir_key] = _DirRes(
                    link, dir_key, Fraction(mtu, per), next(self._dir_seq))
            dirres.append(dr)
        flow = _Flow(next(self._ids), nic.node_id, desc, nfrags, mtu, path,
                     dirres, now)
        flow.wake = env.event(name="flow.wake")
        self._flows[flow.id] = flow
        for dr in dirres:
            dr.members.append(flow)
            dr.acc = 0  # reservation epoch change
        self._m_flows.inc()
        self._m_active.set(len(self._flows))
        self._touch(dirres)
        self._schedule_recompute()
        self._schedule_down_guard(flow, now)
        return flow

    def _schedule_down_guard(self, flow: _Flow, now: int) -> None:
        """One guard at the earliest future down-window onset on any
        switch-egress hop: the instant packets become droppable there,
        the flow must be packets again."""
        onset = None
        for link, _end, sw in flow.hops:
            if sw is None or link.faults is None:
                continue
            for ws, _we in link.faults.spec.down_windows:
                if ws > now and (onset is None or ws < onset):
                    onset = ws
        if onset is not None:
            self.env.call_at(onset, self._down_guard, flow.id, onset)

    def _down_guard(self, fid: int, onset: int) -> None:
        flow = self._flows.get(fid)
        if flow is not None:
            self._decoalesce(flow, "fault", onset=onset)

    # -- rate allocation ---------------------------------------------------

    def _touch(self, dirres) -> None:
        """Record directions whose membership changed; the next flush
        re-divides only the components reachable from them."""
        touched_seqs = self._touched_seqs
        touched = self._touched
        for dr in dirres:
            if dr.seq not in touched_seqs:
                touched_seqs.add(dr.seq)
                touched.append(dr)

    def _settle(self, flow: _Flow, now: int) -> None:
        """Integrate one flow's progress to ``now`` at its current rate.

        ``done <= total`` holds by construction while a flow is live:
        ``eta = last + ceil((total - done)/rate)`` means progress at
        any instant strictly *before* the ETA is strictly below total.
        Overshoot (the ceil rounding up to a packet-grain instant) is
        only possible when settling exactly *at or past* the flow's own
        completion instant — a de-coalescing or neighbour arrival on
        that nanosecond — and the clamp below commits exactly ``total``
        there, never silently losing progress mid-life."""
        dt = now - flow.last
        if dt:
            flow.done += flow.rate * dt
            flow.last = now
            if flow.done > flow.total:
                assert flow.eta is not None and now >= flow.eta, \
                    "water-fill overshot before the flow's ETA"
                flow.done = Fraction(flow.total)

    def _schedule_recompute(self) -> None:
        """Defer the water-fill to the end of the current instant.

        Rates only matter once time advances, so every arrival,
        departure and de-coalescing that lands on the same nanosecond
        shares ONE recomputation — a synchronized 1024-flow permutation
        pays for one flush, not 1024.  Callers must have settled the
        flows whose progress they read *before* mutating membership;
        the flush settles every affected flow itself (dt = 0 for those
        already settled this instant)."""
        if not self._dirty:
            self._dirty = True
            self.env.call_at(self.env.now, self._flush)

    def _flush(self) -> None:
        if not self._dirty:  # pragma: no cover - single-schedule guard
            return
        self._dirty = False
        now = self.env.now
        touched = self._touched
        self._touched = []
        self._touched_seqs = set()
        self._m_flush.inc()
        if not self._flows:
            self._timer_gen += 1  # cancels any armed timer at fire time
            return
        self._m_wf_global.inc(len(self._flows))
        # Connected components of the flow<->direction sharing graph,
        # discovered by BFS from the touched directions over live
        # membership.  A departed flow touched all its directions, so
        # the pieces of a split component are each reached.  Iteration
        # order is deterministic (touch order, member list order).
        seen_dirs: set[int] = set()
        seen_flows: set[int] = set()
        components: list[list[_Flow]] = []
        for root in touched:
            if root.seq in seen_dirs:
                continue
            seen_dirs.add(root.seq)
            if not root.members:
                continue
            comp: list[_Flow] = []
            stack = [root]
            while stack:
                for f in stack.pop().members:
                    if f.id not in seen_flows:
                        seen_flows.add(f.id)
                        comp.append(f)
                        for d2 in f.dirres:
                            if d2.seq not in seen_dirs:
                                seen_dirs.add(d2.seq)
                                stack.append(d2)
            if comp:
                components.append(comp)
        for comp in components:
            for f in comp:
                self._settle(f, now)
            self._waterfill(comp, now)
        if self._verify_reference:
            self._check_reference()
        # Re-arm the completion timer exactly as the global algorithm
        # did: every flush supersedes the armed timer and schedules at
        # the minimum live ETA, so the engine's event schedule — and
        # with it every trace and event count — is unchanged.
        self._timer_gen += 1
        next_eta = self._min_eta()
        if next_eta is not None:
            self.env.call_at(next_eta, self._tick, self._timer_gen)

    def _waterfill(self, comp: list[_Flow], now: int) -> None:
        """Max-min fair water-filling over one component.

        Exact rational arithmetic committed per level; the bottleneck
        scan compares ``avail/count`` ratios by integer
        cross-multiplication so no intermediate ``Fraction`` is built.
        ``share = Fraction(best_n, best_d)`` normalizes to the same
        canonical rational ``avail / count`` produced, keeping rates
        bit-identical to :func:`waterfill_reference`.
        """
        self._m_recompute.inc()
        self._m_wf_touched.inc(len(comp))
        if len(comp) == 1:
            # Singleton component: a flow sharing no direction runs at
            # its path bottleneck capacity.  O(1) — the common case for
            # permutation traffic on a non-blocking fabric.
            f = comp[0]
            f.rate = f.full_rate
            self._commit_eta(f, now)
            return
        dirs: dict[int, _DirRes] = {}
        count: dict[int, int] = {}
        avail: dict[int, Fraction] = {}
        for f in comp:
            for dr in f.dirres:
                seq = dr.seq
                if seq not in dirs:
                    dirs[seq] = dr
                    count[seq] = 0
                    avail[seq] = dr.cap
                count[seq] += 1
        unfixed = {f.id for f in comp}
        order = sorted(dirs)
        while unfixed:
            bottleneck = None
            best_n = best_d = 1
            for seq in order:
                c = count[seq]
                if c <= 0:
                    continue
                a = avail[seq]
                n = a.numerator
                d = a.denominator * c
                # n/d < best_n/best_d, without building Fractions.
                if bottleneck is None or n * best_d < best_n * d:
                    best_n, best_d, bottleneck = n, d, seq
            if bottleneck is None:  # pragma: no cover - defensive
                break
            share = Fraction(best_n, best_d)
            for f in dirs[bottleneck].members:
                if f.id in unfixed:
                    f.rate = share
                    unfixed.discard(f.id)
                    for dr in f.dirres:
                        avail[dr.seq] -= share
                        count[dr.seq] -= 1
        for f in comp:
            self._commit_eta(f, now)

    def _commit_eta(self, f: _Flow, now: int) -> None:
        if f.rate != f.full_rate:
            f.pristine = False
        f.eta = now + _ceil((f.total - f.done) / f.rate)
        heappush(self._eta_heap, (f.eta, f.id))

    def _min_eta(self) -> Optional[int]:
        """Earliest live ETA; drops stale heap entries on the way."""
        heap = self._eta_heap
        flows = self._flows
        while heap:
            eta, fid = heap[0]
            f = flows.get(fid)
            if f is not None and f.eta == eta:
                return eta
            heappop(heap)
        if flows:  # pragma: no cover - every live flow keeps an entry
            return min(f.eta for f in flows.values())
        return None

    def _check_reference(self) -> None:
        expect = waterfill_reference(self._flows.values())
        for f in self._flows.values():
            if f.rate != expect[f.id]:
                raise AssertionError(
                    f"flow {f.id}: incremental rate {f.rate} != "
                    f"reference {expect[f.id]}")

    def _tick(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a later recompute
        now = self.env.now
        heap = self._eta_heap
        flows = self._flows
        due: list[_Flow] = []
        due_ids: set[int] = set()
        while heap:
            eta, fid = heap[0]
            f = flows.get(fid)
            if f is None or f.eta != eta:
                heappop(heap)
                continue
            if eta > now:
                break
            heappop(heap)
            if fid not in due_ids:
                due_ids.add(fid)
                due.append(f)
        due.sort(key=lambda f: f.id)  # admission order, as before
        for f in due:
            # Completing exactly at the ETA: the ceil'd instant is at
            # or past the rational finish time, so the flow carried all
            # its bytes.
            f.done = Fraction(f.total)
            f.last = now
            self._complete(f)
        self._schedule_recompute()

    # -- completion / de-coalescing ----------------------------------------

    def _account(self, flow: _Flow, per_hop: list[int]) -> None:
        """Charge the analytically carried packets to every hop's wire
        and switch counters, exactly as per-packet transmission would
        have by the time those packets crossed."""
        for (link, end, sw), dr, k in zip(flow.hops, flow.dirres, per_hop):
            if k <= 0:
                continue
            nbytes = k * flow.wire_size
            per = link.serialization_ns(flow.wire_size)
            link._m_bytes[dr.dir_key].inc(nbytes)
            link._m_busy[dr.dir_key].inc(k * per)
            if sw is not None:
                sw._m_forwards.inc(k)
                sw._m_bytes.inc(nbytes)

    def _remove(self, flow: _Flow) -> None:
        del self._flows[flow.id]
        for dr in flow.dirres:
            dr.members.remove(flow)
            dr.acc = 0  # reservation epoch change
        self._touch(flow.dirres)
        self._m_active.set(len(self._flows))

    def _finish(self, flow: _Flow, carried: int, at: int) -> None:
        flow.carried = carried
        wake = flow.wake
        flow.wake = None
        if at > self.env.now:
            self.env.call_at(at, wake.succeed)
        else:
            wake.succeed()

    def _complete(self, flow: _Flow) -> None:
        self._account(flow, [flow.npackets] * len(flow.hops))
        self._remove(flow)
        self._finish(flow, flow.npackets, self.env.now)

    def _decoalesce_members(self, dr: _DirRes, reason: str) -> None:
        for flow in list(dr.members):
            self._decoalesce(flow, reason)

    def _decoalesce(self, flow: _Flow, reason: str,
                    onset: Optional[int] = None) -> None:
        """Collapse the reservation back to packet fidelity.

        A pristine flow (full rate since admission, uniform pacing)
        de-coalescing on a down-window onset takes the *exact* path:
        commit the packet in source serialization (as a train split
        does), re-materialize the per-hop in-flight pipeline at the
        exact egress-request instants, and resume the NIC at the source
        packet boundary.  Every other trigger takes the analytic path:
        floor the settled progress to a packet boundary and resume now
        (equivalence bounded by the interloper threshold).
        """
        env = self.env
        now = env.now
        self._settle(flow, now)
        obs.counter("net.flow_decoalesce", fabric=self.name,
                    reason=reason).inc()
        exact = (flow.pristine and flow.uniform and onset is not None
                 and now >= flow.start)
        if exact:
            per = flow.per
            c = min(flow.npackets, max(1, _ceil(Fraction(now - flow.start,
                                                         per))))
            boundary = flow.start + c * per
            self._materialize(flow, c, now)
            self._remove(flow)
            self._finish(flow, c, boundary)
        else:
            c = min(flow.npackets, int(flow.done // flow.wire_size))
            self._account(flow, [c] * len(flow.hops))
            self._remove(flow)
            self._finish(flow, c, now)
        self._schedule_recompute()

    def _materialize(self, flow: _Flow, c: int, now: int) -> None:
        """Exact de-coalescing: packet ``j``'s egress request at switch
        hop ``s`` fires at ``start + (j+s-1)*per + Σ(propagation+crossing)``
        (saturated cut-through pipeline).  Packets whose request is
        already past crossed analytically (charged via
        :meth:`_account`); the rest are re-injected through the ordinary
        switch egress path at exactly those instants, where the ambient
        drop checks — down windows, buffers — see them like any packet.
        """
        env = self.env
        per = flow.per
        per_hop = [c]  # source link: all committed packets crossed
        entries = []
        offset = 0
        k_prev = c
        for s in range(1, len(flow.hops)):
            prev_link = flow.hops[s - 1][0]
            link, end, sw = flow.hops[s]
            offset += prev_link.params.propagation_ns + sw.crossing_ns
            base = flow.start + (s - 1) * per + offset
            # e_s(j) = base + j*per ; crossed iff the request fired
            # strictly before now.
            k_s = (now - base - 1) // per if now > base else 0
            k_s = max(0, min(k_prev, k_s))
            per_hop.append(k_s)
            for j in range(k_s + 1, k_prev + 1):
                frag = Message(
                    kind=MsgKind.FRAG,
                    src_nic=flow.src_nic,
                    src_port=flow.src_port,
                    dst_nic=flow.dst_nic,
                    dst_port=flow.dst_port,
                    match=flow.match,
                    size=flow.wire_size,
                    wire_size=flow.wire_size,
                )
                entries.append((base + j * per, sw.flow_frag_egress,
                                (link, end, frag)))
            k_prev = k_s
        self._account(flow, per_hop)
        if entries:
            env.schedule_bulk(entries)

    # -- introspection -----------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)
