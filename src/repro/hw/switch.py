"""A crossbar switch for multi-node topologies.

The paper's experiments are two-node, but ORFS serves multiple clients
and the examples build small clusters, so a switch is provided.  Each
node connects to the switch by its own full-duplex :class:`Link`; the
switch forwards by destination node id with a small crossing cost
(cut-through, one arbitration per message).
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..errors import NetworkError
from ..sim import Environment
from .link import Link
from .params import LinkParams


class Switch:
    """Crossbar switch: one link per attached node, routed by node id."""

    def __init__(self, env: Environment, link_params: LinkParams,
                 crossing_ns: int = 300, name: str = "switch"):
        self.env = env
        self.link_params = link_params
        self.crossing_ns = crossing_ns
        self.name = name
        self._links: dict[int, Link] = {}  # node id -> link to that node
        #: Optional fault tracer (set by repro.faults.FaultPlan.install).
        self.tracer = None
        # Crossbar accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed).
        self._m_forwards = obs.counter("switch.forwards", switch=name)
        self._m_bytes = obs.counter("switch.bytes", switch=name)
        self._m_dropped = obs.counter("switch.drops", switch=name)

    @property
    def messages_dropped(self) -> int:
        """Messages discarded because the output port's link was down."""
        return self._m_dropped.value

    def add_node(self, node_id: int) -> tuple[Link, str]:
        """Create the link for ``node_id``.

        Returns ``(link, nic_end)``: the NIC should attach to ``nic_end``
        of the returned link; the switch holds the other end.
        """
        if node_id in self._links:
            raise NetworkError(f"node {node_id} already attached to {self.name}")
        link = Link(self.env, self.link_params, name=f"{self.name}.l{node_id}")
        link.attach("a", self._make_ingress(node_id))
        self._links[node_id] = link
        return link, "b"

    def _make_ingress(self, from_node: int):
        def ingress(msg: Any) -> None:
            self.env.process(self._forward(msg), name=f"{self.name}.fwd")

        return ingress

    def _forward(self, msg: Any):
        dst = getattr(msg, "dst_nic", None)
        if dst is None:
            raise NetworkError(f"{self.name} cannot route message without dst_nic")
        out = self._links.get(dst)
        if out is None:
            raise NetworkError(f"{self.name} has no port for node {dst}")
        yield self.env.timeout(self.crossing_ns)
        if out.is_down:
            # Output port has no carrier: the crossbar discards the
            # message (reliable delivery at the NICs recovers it).
            self._m_dropped.inc()
            if self.tracer is not None:
                self.tracer.emit(self.env.now, "fault", "switch_drop", {
                    "switch": self.name, "dst": dst,
                })
            return
        nbytes = getattr(msg, "wire_size", 0) or max(1, getattr(msg, "size", 1))
        self._m_forwards.inc()
        self._m_bytes.inc(nbytes)
        yield from out.transmit("a", msg, nbytes)
