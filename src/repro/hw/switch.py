"""A crossbar switch for multi-node topologies.

The paper's experiments are two-node, but ORFS serves multiple clients
and the examples build small clusters, so a switch is provided.  Each
node connects to the switch by its own full-duplex :class:`Link`; the
switch forwards by destination node id with a small crossing cost
(cut-through, one arbitration per message).

Packet trains
-------------

A :class:`~repro.hw.train.PacketTrain` arriving on an ingress port is
forwarded as one analytic hold on the output port when that port is
eligible (idle, fault-free, untraced, same pacing as the input) —
otherwise the switch *de-coalesces*: it re-materializes the individual
FRAG packets at exactly the times they would have crossed per-packet
(ingress arrival pacing plus the crossing cost) and pushes them through
the ordinary egress path, competing fairly with other flows.  An
upstream :class:`~repro.hw.train.TrainTruncation` caps either form:
the analytic hold re-plans, scheduled per-packet forwards for packets
that never entered the fabric are cancelled at fire time.
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..errors import NetworkError
from ..sim import Environment
from .link import Link
from .nic import Message, MsgKind
from .params import LinkParams
from .train import PacketTrain, TrainRun, TrainTruncation


class Switch:
    """Crossbar switch: one link per attached node, routed by node id."""

    def __init__(self, env: Environment, link_params: LinkParams,
                 crossing_ns: int = 300, name: str = "switch"):
        self.env = env
        self.link_params = link_params
        self.crossing_ns = crossing_ns
        self.name = name
        self._links: dict[int, Link] = {}  # node id -> link to that node
        #: In-flight train transits keyed ``(src_nic, train_id)`` —
        #: train ids are only unique per originating process, so a
        #: sharded fabric needs the source nic to disambiguate.
        self._train_runs: dict[tuple[int, int], TrainRun] = {}
        #: Optional fault tracer (set by repro.faults.FaultPlan.install).
        self.tracer = None
        # Crossbar accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed).
        self._m_forwards = obs.counter("switch.forwards", switch=name)
        self._m_bytes = obs.counter("switch.bytes", switch=name)
        self._m_dropped = obs.counter("switch.drops", switch=name)

    @property
    def messages_dropped(self) -> int:
        """Messages discarded because the output port's link was down."""
        return self._m_dropped.value

    def add_node(self, node_id: int) -> tuple[Link, str]:
        """Create the link for ``node_id``.

        Returns ``(link, nic_end)``: the NIC should attach to ``nic_end``
        of the returned link; the switch holds the other end.
        """
        link = Link(self.env, self.link_params, name=f"{self.name}.l{node_id}")
        self.attach_port(node_id, link, switch_end="a")
        return link, "b"

    def attach_port(self, node_id: int, link: Link, switch_end: str = "a") -> None:
        """Attach an externally built link (e.g. a shard ``BorderLink``)
        as the port for ``node_id``.

        Egress always drives end ``a``, so ``switch_end`` must be "a";
        the parameter exists to make the contract explicit at call
        sites.
        """
        if node_id in self._links:
            raise NetworkError(f"node {node_id} already attached to {self.name}")
        if switch_end != "a":
            raise NetworkError(f"switch must hold end 'a', got {switch_end!r}")
        link.attach(switch_end, self._make_ingress(node_id))
        self._links[node_id] = link

    def _make_ingress(self, from_node: int):
        def ingress(msg: Any) -> None:
            t = type(msg)
            if t is PacketTrain:
                self._ingress_train(from_node, msg)
            elif t is TrainTruncation:
                # Consumed here: downstream either sees our own notice
                # (analytic hold cut short) or simply never sees the
                # cancelled per-packet forwards.
                run = self._train_runs.pop((msg.src_nic, msg.train_id), None)
                if run is not None:
                    run.truncate(msg.npackets)
            else:
                self.env.process(self._forward(msg), name=f"{self.name}.fwd")

        return ingress

    def _route(self, msg: Any) -> Link:
        dst = getattr(msg, "dst_nic", None)
        if dst is None:
            raise NetworkError(f"{self.name} cannot route message without dst_nic")
        out = self._links.get(dst)
        if out is None:
            raise NetworkError(f"{self.name} has no port for node {dst}")
        return out

    def _forward(self, msg: Any):
        out = self._route(msg)
        yield self.env.timeout(self.crossing_ns)
        yield from self._egress(out, msg.dst_nic, msg)

    def _egress(self, out: Link, dst: int, msg: Any):
        """Output-port half of a forward: drop check, accounting, wire."""
        if out.is_down:
            # Output port has no carrier: the crossbar discards the
            # message (reliable delivery at the NICs recovers it).
            self._m_dropped.inc()
            tracer = self.tracer
            if tracer is not None and tracer.wants("fault"):
                tracer.emit(self.env.now, "fault", "switch_drop", {
                    "switch": self.name, "dst": dst,
                })
            return
        nbytes = getattr(msg, "wire_size", 0) or max(1, getattr(msg, "size", 1))
        self._m_forwards.inc()
        self._m_bytes.inc(nbytes)
        yield from out.transmit("a", msg, nbytes)

    # -- packet-train forwarding ------------------------------------------

    def _ingress_train(self, from_node: int, train: PacketTrain) -> None:
        run = TrainRun(train.npackets)
        self._train_runs[(train.src_nic, train.train_id)] = run
        in_link = self._links[from_node]
        self.env.process(self._forward_train(train, run, in_link),
                         name=f"{self.name}.fwd")

    def _forward_train(self, train: PacketTrain, run: TrainRun, in_link: Link):
        arrival = self.env.now  # first-packet arrival on the ingress port
        out = self._route(train)
        per_in = in_link.serialization_ns(train.wire_size)
        yield self.env.timeout(self.crossing_ns)
        reason = out.train_block_reason("a")
        if reason is None and out.serialization_ns(train.wire_size) != per_in:
            # Never true with uniform LinkParams, but a pacing mismatch
            # would open inter-packet gaps the analytic hold can't model.
            reason = "pacing"
        if reason is None:
            done = yield from out.transmit_train("a", train, run)
            self._m_forwards.inc(done)
            self._m_bytes.inc(done * train.wire_size)
            if done < train.npackets and run.contended:
                # Packets done+1.. are still streaming in from upstream;
                # forward each at its per-packet time, behind the
                # competitor that broke the hold.
                obs.counter("net.train_splits", where=self.name).inc()
                self._schedule_frag_egress(out, train, run, done + 1,
                                           arrival, per_in)
            else:
                # Complete, or cut short by an upstream truncation whose
                # notice already left the registry.
                self._train_runs.pop((train.src_nic, train.train_id), None)
            return
        obs.counter("net.train_decoalesce",
                    where=self.name, reason=reason).inc()
        self._schedule_frag_egress(out, train, run, 2, arrival, per_in)
        # Packet 1 crosses now, through the ordinary egress path (its
        # request lands in this same callback, as per-packet would).
        yield from self._egress_frag_now(out, train, run, 1)

    def _schedule_frag_egress(self, out: Link, train: PacketTrain,
                              run: TrainRun, first: int, arrival: int,
                              per_in: int) -> None:
        """Schedule per-packet egress for packets ``first..npackets`` at
        their ingress-paced forward times; each entry re-checks
        ``run.limit`` when it fires so later truncations cancel it."""
        cross = self.crossing_ns
        entries = [
            (arrival + (j - 1) * per_in + cross,
             self._egress_frag, (out, train, run, j))
            for j in range(first, train.npackets + 1)
        ]
        # Registry cleanup after the last packet could have fired: any
        # truncation notice provably arrives earlier.
        last = arrival + (train.npackets - 1) * per_in + cross
        entries.append((last, self._train_runs.pop,
                        ((train.src_nic, train.train_id), None)))
        self.env.schedule_bulk(entries)

    def _frag_of(self, train: PacketTrain) -> Message:
        return Message(
            kind=MsgKind.FRAG,
            src_nic=train.src_nic,
            src_port=train.src_port,
            dst_nic=train.dst_nic,
            dst_port=train.dst_port,
            match=train.match,
            size=train.wire_size,
            wire_size=train.wire_size,
        )

    def _egress_frag(self, out: Link, train: PacketTrain, run: TrainRun,
                     j: int) -> None:
        if j > run.limit:
            return  # truncated upstream: packet j never entered the fabric
        self.env.process(self._egress(out, train.dst_nic, self._frag_of(train)),
                         name=f"{self.name}.fwd")

    def _egress_frag_now(self, out: Link, train: PacketTrain, run: TrainRun,
                         j: int):
        if j > run.limit:
            return
        yield from self._egress(out, train.dst_nic, self._frag_of(train))
