"""A crossbar switch for multi-node and multi-switch topologies.

The paper's experiments are two-node, but ORFS serves multiple clients
and the examples build small clusters, so a switch is provided.  Each
node connects to the switch by its own full-duplex :class:`Link`; the
switch forwards by destination node id with a small crossing cost
(cut-through, one arbitration per message).

Fabric mode
-----------

A switch can additionally hold *trunk* ports to other switches
(:meth:`attach_trunk`) and a routing table (:meth:`set_topology`):
destinations that are not directly attached resolve — via a shared
node→switch locator — to a destination switch, and that switch's entry
lists the equal-cost candidate trunk ports computed by the topology
builder (:mod:`repro.cluster.topo`).  Among candidates the switch picks
either by deterministic ECMP flow hashing (``routing="ecmp"``, the
default: every packet of one flow takes one path) or adaptively by
least-queued egress skipping down links (``routing="adaptive"``).
Output ports may carry a finite egress buffer
(``egress_buffer_bytes``): when queued-plus-in-service bytes would
exceed it, the packet is drop-tailed and counted as a congestion drop —
the same recovery contract as carrier loss (NIC reliability layer, if
enabled, retransmits; FRAG pacing packets need no recovery).

Packet trains
-------------

A :class:`~repro.hw.train.PacketTrain` arriving on an ingress port is
forwarded as one analytic hold on the output port when that port is
eligible (idle, fault-free, untraced, same pacing as the input) —
otherwise the switch *de-coalesces*: it re-materializes the individual
FRAG packets at exactly the times they would have crossed per-packet
(ingress arrival pacing plus the crossing cost) and pushes them through
the ordinary egress path, competing fairly with other flows.  An
upstream :class:`~repro.hw.train.TrainTruncation` caps either form:
the analytic hold re-plans, scheduled per-packet forwards for packets
that never entered the fabric are cancelled at fire time.

The flow engine (:mod:`repro.hw.flow`) sits one level above and needs
two things from the switch: :meth:`peek_route` (the pure, side-effect-
free replay of the ECMP decision, used to freeze a flow's path at
admission) and :meth:`flow_frag_egress` (re-materialization of in-
flight packets when a flow de-coalesces mid-fabric).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .. import obs
from ..errors import NetworkError
from ..sim import Environment
from .link import Link
from .nic import Message, MsgKind
from .params import LinkParams
from .train import PacketTrain, TrainRun, TrainTruncation
from .wire import ecmp_hash


class Switch:
    """Crossbar switch: host links routed by node id, trunks by table."""

    def __init__(self, env: Environment, link_params: LinkParams,
                 crossing_ns: int = 300, name: str = "switch",
                 routing: str = "ecmp", ecmp_seed: int = 1,
                 egress_buffer_bytes: Optional[int] = None):
        if routing not in ("ecmp", "adaptive"):
            raise NetworkError(f"routing must be 'ecmp' or 'adaptive', "
                               f"got {routing!r}")
        self.env = env
        self.link_params = link_params
        self.crossing_ns = crossing_ns
        self.name = name
        self.routing = routing
        self.ecmp_seed = ecmp_seed
        self.egress_buffer_bytes = egress_buffer_bytes
        self._links: dict[int, Link] = {}  # node id -> link to that node
        #: Trunk ports to neighbouring switches: port id -> (link, held end).
        self._trunks: dict[int, tuple[Link, str]] = {}
        #: Routing table: destination switch name -> equal-cost trunk
        #: port candidates (sorted; set by the topology builder).
        self._switch_routes: dict[str, tuple[int, ...]] = {}
        #: Shared node id -> switch name locator (one dict per fabric).
        self._locator: Optional[dict[int, str]] = None
        #: Per-egress-link occupancy in bytes (queued + in service).
        #: Maintained only when something reads it (finite buffer or
        #: adaptive routing) so the classic star hot path is untouched.
        self._eq: dict[Link, int] = {}
        self._track_q = routing == "adaptive" or egress_buffer_bytes is not None
        #: In-flight train transits keyed ``(src_nic, train_id)`` —
        #: train ids are only unique per originating process, so a
        #: sharded fabric needs the source nic to disambiguate.
        self._train_runs: dict[tuple[int, int], TrainRun] = {}
        #: Optional fault tracer (set by repro.faults.FaultPlan.install).
        self.tracer = None
        # Crossbar accounting on the metrics registry (unregistered
        # per-instance counters while no registry is installed).
        self._m_forwards = obs.counter("switch.forwards", switch=name)
        self._m_bytes = obs.counter("switch.bytes", switch=name)
        self._m_dropped = obs.counter("switch.drops", switch=name)
        # Congestion drops get their own counter lazily: it only exists
        # on fabrics that configured a finite buffer and overflowed it.
        self._m_congestion = None

    @property
    def messages_dropped(self) -> int:
        """Messages discarded because the output port's link was down."""
        return self._m_dropped.value

    @property
    def congestion_drops(self) -> int:
        """Packets drop-tailed by a full egress buffer."""
        return 0 if self._m_congestion is None else self._m_congestion.value

    # -- wiring ------------------------------------------------------------

    def add_node(self, node_id: int) -> tuple[Link, str]:
        """Create the link for ``node_id``.

        Returns ``(link, nic_end)``: the NIC should attach to ``nic_end``
        of the returned link; the switch holds the other end.
        """
        link = Link(self.env, self.link_params, name=f"{self.name}.l{node_id}")
        self.attach_port(node_id, link, switch_end="a")
        return link, "b"

    def attach_port(self, node_id: int, link: Link, switch_end: str = "a") -> None:
        """Attach an externally built link (e.g. a shard ``BorderLink``)
        as the port for ``node_id``.

        Host-port egress always drives end ``a``, so ``switch_end`` must
        be "a"; the parameter exists to make the contract explicit at
        call sites.
        """
        if node_id in self._links:
            raise NetworkError(f"node {node_id} already attached to {self.name}")
        if switch_end != "a":
            raise NetworkError(f"switch must hold end 'a', got {switch_end!r}")
        link.attach(switch_end, self._make_ingress(link))
        self._links[node_id] = link

    def attach_trunk(self, port_id: int, link: Link, end: str) -> None:
        """Attach one end of a switch-to-switch trunk as ``port_id``.

        Unlike host ports, a trunk may hold either link end: the two
        switches sharing the cable necessarily hold opposite ends.
        """
        if port_id in self._trunks:
            raise NetworkError(
                f"trunk port {port_id} already attached to {self.name}")
        link.attach(end, self._make_ingress(link))
        self._trunks[port_id] = (link, end)

    def set_topology(self, locator: dict[int, str],
                     routes: dict[str, tuple[int, ...]]) -> None:
        """Install the fabric routing state.

        ``locator`` maps every node id to the name of its edge switch
        and is *shared* (the same dict object) across the fabric's
        switches; ``routes`` maps destination switch names to this
        switch's equal-cost candidate trunk ports.
        """
        self._locator = locator
        self._switch_routes = routes

    def trunk_links(self) -> Iterable[Link]:
        """The trunk links this switch holds a port on."""
        for link, _end in self._trunks.values():
            yield link

    def all_links(self) -> Iterable[Link]:
        """Every link attached to this switch (host ports and trunks) —
        the set a :class:`repro.faults.FaultPlan` arms."""
        yield from self._links.values()
        yield from self.trunk_links()

    # -- ingress / routing -------------------------------------------------

    def _make_ingress(self, in_link: Link):
        def ingress(msg: Any) -> None:
            t = type(msg)
            if t is PacketTrain:
                self._ingress_train(in_link, msg)
            elif t is TrainTruncation:
                # Consumed here: downstream either sees our own notice
                # (analytic hold cut short) or simply never sees the
                # cancelled per-packet forwards.
                run = self._train_runs.pop((msg.src_nic, msg.train_id), None)
                if run is not None:
                    run.truncate(msg.npackets)
            else:
                self.env.process(self._forward(msg), name=f"{self.name}.fwd")

        return ingress

    def _select_port(self, msg: Any) -> tuple[Link, str]:
        dst = getattr(msg, "dst_nic", None)
        if dst is None:
            raise NetworkError(f"{self.name} cannot route message without dst_nic")
        out = self._links.get(dst)
        if out is not None:
            return out, "a"
        return self._select_trunk(
            dst, getattr(msg, "src_nic", 0), getattr(msg, "src_port", 0),
            getattr(msg, "dst_port", 0))

    def _select_trunk(self, dst: int, src_nic: int, src_port: int,
                      dst_port: int) -> tuple[Link, str]:
        locator = self._locator
        dst_sw = locator.get(dst) if locator is not None else None
        if dst_sw is None:
            raise NetworkError(f"{self.name} has no port for node {dst}")
        cands = self._switch_routes.get(dst_sw)
        if not cands:
            raise NetworkError(f"{self.name} has no route towards {dst_sw}")
        if len(cands) == 1:
            return self._trunks[cands[0]]
        h = ecmp_hash(src_nic, src_port, dst, dst_port, self.ecmp_seed)
        if self.routing == "adaptive":
            return self._trunks[self._adaptive_pick(cands, h)]
        return self._trunks[cands[h % len(cands)]]

    def _adaptive_pick(self, cands: tuple[int, ...], h: int) -> int:
        """Least-queued up candidate; hash-rotated deterministic
        tie-break so equally idle ports still spread flows."""
        n = len(cands)
        best = None
        best_key = None
        for i, pid in enumerate(cands):
            link, _end = self._trunks[pid]
            if link.is_down:
                continue
            key = (self._eq.get(link, 0), (i - h) % n)
            if best_key is None or key < best_key:
                best, best_key = pid, key
        if best is None:
            # Every candidate is down: fall back to the hash choice and
            # let the egress drop-check account the loss, exactly as a
            # single-path switch would.
            return cands[h % n]
        return best

    def peek_route(self, src_nic: int, src_port: int, dst_nic: int,
                   dst_port: int) -> Optional[tuple[Link, str]]:
        """Replay the forwarding decision for one flow without side
        effects — the hop the final packet *will* take.

        Only meaningful under ``"ecmp"`` routing (the decision is a pure
        function of the addressing tuple); adaptive routing is queue-
        state dependent, so this returns ``None`` and the flow engine
        declines the path.
        """
        out = self._links.get(dst_nic)
        if out is not None:
            return out, "a"
        if self.routing != "ecmp":
            return None
        return self._select_trunk(dst_nic, src_nic, src_port, dst_port)

    # -- per-packet forwarding ---------------------------------------------

    def _forward(self, msg: Any):
        out, end = self._select_port(msg)
        yield self.env.timeout(self.crossing_ns)
        yield from self._egress(out, end, msg.dst_nic, msg)

    def _congestion_drop(self, dst: int, nbytes: int) -> None:
        if self._m_congestion is None:
            self._m_congestion = obs.counter("switch.congestion_drops",
                                             switch=self.name)
        self._m_congestion.inc()
        tracer = self.tracer
        if tracer is not None and tracer.wants("fault"):
            tracer.emit(self.env.now, "fault", "switch_congestion_drop", {
                "switch": self.name, "dst": dst, "bytes": nbytes,
            })

    def _egress(self, out: Link, end: str, dst: int, msg: Any):
        """Output-port half of a forward: drop check, accounting, wire."""
        if out.is_down:
            # Output port has no carrier: the crossbar discards the
            # message (reliable delivery at the NICs recovers it).
            self._m_dropped.inc()
            tracer = self.tracer
            if tracer is not None and tracer.wants("fault"):
                tracer.emit(self.env.now, "fault", "switch_drop", {
                    "switch": self.name, "dst": dst,
                })
            return
        nbytes = getattr(msg, "wire_size", 0) or max(1, getattr(msg, "size", 1))
        if self._track_q:
            held = self._eq.get(out, 0)
            cap = self.egress_buffer_bytes
            if cap is not None and held + nbytes > cap:
                self._congestion_drop(dst, nbytes)
                return
            self._eq[out] = held + nbytes
            try:
                self._m_forwards.inc()
                self._m_bytes.inc(nbytes)
                yield from out.transmit(end, msg, nbytes)
            finally:
                self._eq[out] -= nbytes
            return
        self._m_forwards.inc()
        self._m_bytes.inc(nbytes)
        yield from out.transmit(end, msg, nbytes)

    # -- packet-train forwarding ------------------------------------------

    def _ingress_train(self, in_link: Link, train: PacketTrain) -> None:
        run = TrainRun(train.npackets)
        self._train_runs[(train.src_nic, train.train_id)] = run
        self.env.process(self._forward_train(train, run, in_link),
                         name=f"{self.name}.fwd")

    def _forward_train(self, train: PacketTrain, run: TrainRun, in_link: Link):
        arrival = self.env.now  # first-packet arrival on the ingress port
        out, end = self._select_port(train)
        per_in = in_link.serialization_ns(train.wire_size)
        yield self.env.timeout(self.crossing_ns)
        reason = out.train_block_reason(end)
        if reason is None and out.serialization_ns(train.wire_size) != per_in:
            # Never true with uniform LinkParams, but a pacing mismatch
            # would open inter-packet gaps the analytic hold can't model.
            reason = "pacing"
        if reason is None:
            if self._track_q:
                self._eq[out] = self._eq.get(out, 0) \
                    + train.npackets * train.wire_size
            try:
                done = yield from out.transmit_train(end, train, run)
            finally:
                if self._track_q:
                    self._eq[out] -= train.npackets * train.wire_size
            self._m_forwards.inc(done)
            self._m_bytes.inc(done * train.wire_size)
            if done < train.npackets and run.contended:
                # Packets done+1.. are still streaming in from upstream;
                # forward each at its per-packet time, behind the
                # competitor that broke the hold.
                obs.counter("net.train_splits", where=self.name).inc()
                self._schedule_frag_egress(out, end, train, run, done + 1,
                                           arrival, per_in)
            else:
                # Complete, or cut short by an upstream truncation whose
                # notice already left the registry.
                self._train_runs.pop((train.src_nic, train.train_id), None)
            return
        obs.counter("net.train_decoalesce",
                    where=self.name, reason=reason).inc()
        self._schedule_frag_egress(out, end, train, run, 2, arrival, per_in)
        # Packet 1 crosses now, through the ordinary egress path (its
        # request lands in this same callback, as per-packet would).
        yield from self._egress_frag_now(out, end, train, run, 1)

    def _schedule_frag_egress(self, out: Link, end: str, train: PacketTrain,
                              run: TrainRun, first: int, arrival: int,
                              per_in: int) -> None:
        """Schedule per-packet egress for packets ``first..npackets`` at
        their ingress-paced forward times; each entry re-checks
        ``run.limit`` when it fires so later truncations cancel it."""
        cross = self.crossing_ns
        entries = [
            (arrival + (j - 1) * per_in + cross,
             self._egress_frag, (out, end, train, run, j))
            for j in range(first, train.npackets + 1)
        ]
        # Registry cleanup after the last packet could have fired: any
        # truncation notice provably arrives earlier.
        last = arrival + (train.npackets - 1) * per_in + cross
        entries.append((last, self._train_runs.pop,
                        ((train.src_nic, train.train_id), None)))
        self.env.schedule_bulk(entries)

    def _frag_of(self, train: PacketTrain) -> Message:
        return Message(
            kind=MsgKind.FRAG,
            src_nic=train.src_nic,
            src_port=train.src_port,
            dst_nic=train.dst_nic,
            dst_port=train.dst_port,
            match=train.match,
            size=train.wire_size,
            wire_size=train.wire_size,
        )

    def _egress_frag(self, out: Link, end: str, train: PacketTrain,
                     run: TrainRun, j: int) -> None:
        if j > run.limit:
            return  # truncated upstream: packet j never entered the fabric
        self.env.process(
            self._egress(out, end, train.dst_nic, self._frag_of(train)),
            name=f"{self.name}.fwd")

    def _egress_frag_now(self, out: Link, end: str, train: PacketTrain,
                         run: TrainRun, j: int):
        if j > run.limit:
            return
        yield from self._egress(out, end, train.dst_nic, self._frag_of(train))

    # -- flow de-coalescing support ---------------------------------------

    def flow_frag_egress(self, out: Link, end: str, frag: Message) -> None:
        """Fire one re-materialized FRAG through the ordinary egress
        path — scheduled by :class:`repro.hw.flow.FlowNetwork` at the
        exact instant the packet's egress request would have landed
        here had the flow been simulated per-packet (used for the
        in-flight pipeline when a flow de-coalesces mid-fabric)."""
        self.env.process(self._egress(out, end, frag.dst_nic, frag),
                         name=f"{self.name}.fwd")
