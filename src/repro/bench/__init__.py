"""Benchmark harness: NetPIPE-style ping-pong, transports, figure drivers.

The measurement methodology mirrors the paper's: latency is half the
averaged round-trip of a ping-pong (NetPIPE [Net]); bandwidth is
``size / one_way_time`` at each message size.  One :class:`Transport`
adapter per protocol stack (GM user/kernel, MX user/kernel with copy
flags, the sockets, TCP/IP) lets every figure reuse one harness.

``python -m repro.bench <figure>`` regenerates any table/figure; see
:mod:`repro.bench.figures` for the per-experiment drivers and
EXPERIMENTS.md for paper-vs-measured results.
"""

from .netpipe import PingPongResult, ping_pong, sweep
from .report import format_series, format_table

__all__ = [
    "PingPongResult",
    "format_series",
    "format_table",
    "ping_pong",
    "sweep",
]
