"""``python -m repro.bench`` — see :mod:`repro.bench.runner`."""

from .runner import main

raise SystemExit(main())
