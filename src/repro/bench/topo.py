"""Fabric benchmark: hybrid flow fidelity on fat-tree topologies.

``python -m repro.bench topo`` runs all-hosts transfer patterns over a
k-ary fat-tree (:func:`repro.cluster.topo.fat_tree`) in each of the
engine's three fidelity modes — ``packet`` (coalescing off), ``train``
(packet-train wire fast path) and ``flow`` (analytic steady-state flow
reservations, :mod:`repro.hw.flow`) — and compares engine event counts
and completion times.

Two scenarios:

* ``identity`` — same-edge pairwise exchange: host ``i`` swaps
  ``size`` bytes with host ``i ^ 1`` under the same edge switch.  Every
  link direction carries exactly one transfer, so flows stay pristine
  and the analytic model is *exactly* equivalent: completion tables and
  the (train/flow-filtered) metrics snapshot must be byte-identical
  across all three modes.  ``--verify`` enforces that; the CI
  ``topo-smoke`` job runs it on every push.

* ``congested`` — cross-pod shift permutation: host ``i`` sends to
  ``(i + hosts_per_pod) mod n``, pushing every transfer through the
  core over ECMP-shared trunks.  Here max-min fair sharing approximates
  FIFO packet interleaving, so completion times may deviate slightly
  (documented in DESIGN.md §6); the gate is the *event* count — the
  flow path must process at least ``--gate``× fewer engine events than
  packet fidelity (CI requires 10×).

``--full`` switches from the default k=8 (128 hosts) to k=16
(1024 hosts) — interactive (~6 s in flow mode) since the incremental
component-local water-fill; BENCH_engine.json's ``topo_full`` section
records it.  ``--waterfill-gate FACTOR`` holds the component-local
allocator to FACTOR× fewer flows re-divided than the from-scratch
global algorithm (``net.flow_waterfill_flows{scope=touched vs
global}``) on the congested permutation.  ``--parallel N`` additionally
runs the congested permutation pod-sharded across N worker processes
(:meth:`repro.cluster.topo.Fabric.propose_pods` + ``repro.sim.shard``);
with ``--verify`` the in-process sequential reference must agree
exactly — completion tables, global clock and event count.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from .. import obs
from ..cluster.topo import fat_tree, plan_fabric
from ..mem import sglist
from ..hw import flow as flowmod
from ..hw import train
from ..hw.params import host_params
from ..sim import Environment
from ..sim.shard import run_sequential, run_sharded
from ..units import KiB, MiB, PAGE_SIZE
from .netpipe import prepare_pair
from .transports import MxTransport

MODES = ("packet", "train", "flow")

#: Metric families describing an *optimization* rather than the model;
#: the only ones allowed to differ between fidelity modes.
_MODE_PRIVATE = ("net.train", "net.flow")


def pairs_for(scenario: str, k: int, n: int) -> list:
    """(src, dst) transfer list for a scenario on an n-host k-ary tree."""
    if scenario == "identity":
        # Same-edge exchange needs an even host count per edge switch.
        if (k // 2) % 2:
            raise ValueError(
                f"identity scenario needs k/2 even (k/2 hosts per edge "
                f"switch, paired two by two), got k={k}")
        return [(i, i ^ 1) for i in range(n)]
    if scenario == "congested":
        per_pod = (k // 2) * (k // 2)
        return [(i, (i + per_pod) % n) for i in range(n)]
    raise ValueError(f"unknown scenario {scenario!r}")


def filtered_obs(snapshot: dict) -> dict:
    """Snapshot minus the train/flow-only families (mode-private)."""
    out = {}
    for section in ("counters", "gauges", "histograms"):
        out[section] = {
            k: v for k, v in snapshot[section].items()
            if not k.startswith(_MODE_PRIVATE)
        }
    return out


def flow_work_stats(snapshot: dict) -> dict:
    """Water-fill work accounting from a raw metrics snapshot.

    ``touched`` sums flows actually re-divided by the component-local
    engine; ``global_equiv`` is what the from-scratch global algorithm
    would have re-divided (all live flows, every flush).  Their ratio
    is the work reduction the ``--waterfill-gate`` CI floor holds.
    """

    def family(name: str, **labels) -> int:
        want = set(labels.items())
        total = 0
        for key, value in snapshot["counters"].items():
            base, _, rest = key.partition("{")
            if base != name:
                continue
            got = set()
            for part in rest.rstrip("}").split(","):
                if "=" in part:
                    lk, _, lv = part.partition("=")
                    got.add((lk.strip(), lv.strip()))
            if want <= got:
                total += value
        return total

    touched = family("net.flow_waterfill_flows", scope="touched")
    global_equiv = family("net.flow_waterfill_flows", scope="global")
    return {
        "flushes": family("net.flow_flush"),
        "recomputes": family("net.flow_recompute"),
        "touched": touched,
        "global_equiv": global_equiv,
        "work_reduction": (global_equiv / touched) if touched else None,
    }


def run_topo(k: int, scenario: str, mode: str, size: int = 256 * KiB) -> dict:
    """One fat-tree scenario in one fidelity mode.

    Returns the final clock, engine event count, a deterministic
    per-transfer completion table (list of ``(src, dst, done_ns)``) and
    the mode-filtered metrics snapshot.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    flowmod.set_flow_mode(mode == "flow")
    train.set_coalescing(mode != "packet")
    # The host-copy accumulator is process-global; reset it so the
    # mem.host_copies collector reports this run, not the session.
    sglist.HOST_COPIES.reset()
    registry = obs.MetricsRegistry()
    try:
        with obs.installed_registry(registry):
            env = Environment()
            # Transfers never touch more than a few MiB of frames; a
            # small pool keeps the 1024-host build cheap.
            fabric = fat_tree(env, k, host=host_params(memory_frames=2048))
            n = len(fabric.nodes)
            pairs = pairs_for(scenario, k, n)
            senders = {}
            receivers = {}
            for src, dst in pairs:
                senders[(src, dst)] = MxTransport(
                    fabric.nodes[src], 1, peer_node=dst, peer_ep=2,
                    context="kernel")
                receivers[(src, dst)] = MxTransport(
                    fabric.nodes[dst], 2, peer_node=src, peer_ep=1,
                    context="kernel")
            for p in pairs:
                prepare_pair(env, senders[p], receivers[p], size)
            done = {}

            def tx(t):
                yield from t.send(size)

            def rx(p, t):
                yield from t.recv(size)
                done[p] = env.now

            t0 = time.perf_counter()
            ev0 = env.events_processed
            for p in pairs:
                env.process(tx(senders[p]))
                env.process(rx(p, receivers[p]))
            env.run()
            wall = time.perf_counter() - t0
            table = [(src, dst, done[(src, dst)]) for src, dst in pairs]
            payload_mib = len(pairs) * size / MiB
            raw = registry.snapshot()
            return {
                "mode": mode,
                "k": k,
                "hosts": n,
                "scenario": scenario,
                "size": size,
                "now": env.now,
                "events": env.events_processed - ev0,
                "events_per_mib": (env.events_processed - ev0) / payload_mib,
                "wall_s": wall,
                "completions": table,
                "flow_stats": flow_work_stats(raw),
                "obs": filtered_obs(raw),
            }
    finally:
        flowmod.set_flow_mode(True)
        train.set_coalescing(True)


def completion_table(result: dict) -> str:
    """Render the per-transfer completion times (diffable across modes)."""
    lines = [f"{src:>5d} -> {dst:>5d}  {t:>14d} ns"
             for src, dst, t in result["completions"]]
    return "\n".join(lines)


def run_scenario(k: int, scenario: str, size: int,
                 modes=MODES) -> dict:
    """All requested modes on one scenario, plus cross-mode digests."""
    results = {mode: run_topo(k, scenario, mode, size) for mode in modes}
    out: dict = {"scenario": scenario, "results": results}
    if "packet" in results and "flow" in results:
        out["event_reduction"] = (results["packet"]["events"]
                                  / results["flow"]["events"])
    ref = results[modes[0]]
    out["completions_identical"] = all(
        r["completions"] == ref["completions"] for r in results.values())
    out["obs_identical"] = all(
        r["obs"] == ref["obs"] for r in results.values())
    return out


# ---------------------------------------------------------------------------
# pod-sharded fabric runs (repro.sim.shard)
# ---------------------------------------------------------------------------


class FabricPermutationScenario:
    """A fat-tree transfer pattern split pod-wise across shard workers.

    The abstract topology is planned once (:func:`plan_fabric` — no
    hardware built), :meth:`Fabric.propose_pods` picks the pod→shard
    assignment, and every cut inter-pod trunk becomes a border whose
    fat ``inter_propagation_ns`` is the conservative lookahead window.
    Each worker then builds its partial fabric and drives the senders
    and receivers that live on its own hosts.  Partial fabrics install
    no FlowNetwork (a reservation needs the global path view), so both
    the sharded run and the in-process sequential reference execute at
    packet-train fidelity — byte-identical by the usual shard contract.
    """

    observe = False
    nphases = 2

    def __init__(self, k: int, size: int, scenario: str = "congested",
                 nshards: int = 2):
        self.k = k
        self.size = size
        self.scenario = scenario
        self.nshards = nshards
        self.host = host_params(memory_frames=2048)
        plan = plan_fabric(fat_tree, k, host=self.host)
        self.assignment = plan.propose_pods(nshards)
        self._borders = [
            (t.name, self.assignment[t.a], self.assignment[t.b])
            for t in plan.topolinks()
            if self.assignment[t.a] != self.assignment[t.b]
        ]
        self.pairs = pairs_for(scenario, k, len(plan.locator))

    def borders(self):
        return list(self._borders)

    def build(self, shard_id: int, env: Environment, hub):
        fabric = fat_tree(env, self.k, host=self.host, hub=hub,
                          shard_id=shard_id, assignment=self.assignment)
        local = {node.node_id: node for node in fabric.nodes}
        senders = []
        receivers = []
        for src, dst in self.pairs:
            if src in local:
                senders.append(MxTransport(local[src], 1, peer_node=dst,
                                           peer_ep=2, context="kernel"))
            if dst in local:
                receivers.append(
                    ((src, dst), MxTransport(local[dst], 2, peer_node=src,
                                             peer_ep=1, context="kernel")))
        return {"senders": senders, "receivers": receivers, "done": []}

    def phase(self, shard_id: int, k: int, env: Environment, ctx):
        if k == 0:
            pre = max(self.size, PAGE_SIZE)
            return [t.prepare(pre) for t in ctx["senders"]] + \
                   [t.prepare(pre) for _pair, t in ctx["receivers"]]

        def tx(t):
            yield from t.send(self.size)

        def rx(pair, t):
            yield from t.recv(self.size)
            ctx["done"].append((pair[0], pair[1], env.now))

        return [tx(t) for t in ctx["senders"]] + \
               [rx(pair, t) for pair, t in ctx["receivers"]]

    def result(self, shard_id: int, env: Environment, ctx):
        # No local clock in the payload: a worker's final now is its
        # last *local* event, which legitimately differs from the
        # sequential drain; the global clock is ShardResult.now.
        return {"done": sorted(ctx["done"])}


def run_topo_sharded(k: int, size: int, nshards: int,
                     scenario: str = "congested",
                     verify: bool = False) -> dict:
    """One pod-sharded fabric run (optionally checked against the
    in-process sequential reference, which must agree byte-for-byte)."""
    flowmod.set_flow_mode(True)
    train.set_coalescing(True)
    sc = FabricPermutationScenario(k, size, scenario, nshards)
    out = {
        "k": k,
        "hosts": k ** 3 // 4,
        "scenario": scenario,
        "size": size,
        "nshards": sc.nshards,
        "borders": len(sc.borders()),
    }
    if verify:
        t0 = time.perf_counter()
        seq = run_sequential(sc)
        out["wall_s_sequential"] = time.perf_counter() - t0
        out["events_sequential"] = seq.events_processed
    t0 = time.perf_counter()
    shr = run_sharded(sc)
    out["wall_s_sharded"] = time.perf_counter() - t0
    out["events_sharded"] = shr.events_processed
    out["now_ns"] = shr.now
    out["completions"] = sorted(
        c for p in shr.payloads for c in p["done"])
    if verify:
        # Identity gate: per-shard completion tables, the global clock
        # and the total event count.  All three are deterministic —
        # border arrivals are committed with explicit heap ranks
        # (Environment.schedule_ranked), so same-instant arbitration
        # cannot depend on which sync window the wall-clock grant
        # batching landed an item in.
        seq_payload = seq.payloads[0]  # {sid: result} pseudo-shard
        out["identical"] = (
            shr.now == seq.now
            and shr.events_processed == seq.events_processed
            and all(shr.payloads[sid] == seq_payload[sid]
                    for sid in range(sc.nshards)))
        out["speedup"] = out["wall_s_sequential"] / out["wall_s_sharded"]
    return out


# ---------------------------------------------------------------------------
# perf-harness section (BENCH_engine.json)
# ---------------------------------------------------------------------------


def bench_topo(quick: bool = False) -> dict:
    """``topo`` section of the perf report.

    Event counts are deterministic, so CI gates directly on
    ``event_reduction`` (>= 10x on the congested permutation) and on the
    identity scenario's byte-identical completion tables and metric
    snapshots.  ``quick`` drops to k=4 (16 hosts) for the smoke run.
    """
    k = 4 if quick else 8
    size = 64 * KiB if quick else 256 * KiB
    congested = run_scenario(k, "congested", size)
    identity = run_scenario(k, "identity", size)

    def digest(sc: dict) -> dict:
        return {
            "events": {m: r["events"] for m, r in sc["results"].items()},
            "events_per_mib": {m: round(r["events_per_mib"], 1)
                               for m, r in sc["results"].items()},
            "now_ns": {m: r["now"] for m, r in sc["results"].items()},
            "wall_s": {m: r["wall_s"] for m, r in sc["results"].items()},
            "event_reduction": sc["event_reduction"],
            "completions_identical": sc["completions_identical"],
            "obs_identical": sc["obs_identical"],
            "flow_stats": sc["results"]["flow"]["flow_stats"],
        }

    return {
        "k": k,
        "hosts": k ** 3 // 4,
        "size": size,
        "congested": digest(congested),
        "identity": digest(identity),
        "summary": {
            "event_reduction": congested["event_reduction"],
            "events_per_mib_flow":
                congested["results"]["flow"]["events_per_mib"],
            "identity_completions_identical":
                identity["completions_identical"],
            "identity_obs_identical": identity["obs_identical"],
            "waterfill_reduction":
                congested["results"]["flow"]["flow_stats"]["work_reduction"],
        },
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench topo",
        description="Fat-tree fabric: packet vs train vs flow fidelity",
    )
    parser.add_argument("-k", type=int, default=8,
                        help="fat-tree arity (k^3/4 hosts; default 8)")
    parser.add_argument("--full", action="store_true",
                        help="k=16: the 1024-host configuration (slow; "
                             "several minutes)")
    parser.add_argument("--size", type=int, default=256 * KiB,
                        help="bytes per transfer (default 256 KiB)")
    parser.add_argument("--scenario", choices=("identity", "congested",
                                               "both"),
                        default="both")
    parser.add_argument("--modes", default="packet,train,flow",
                        help="comma-separated subset of packet,train,flow")
    parser.add_argument("--verify", action="store_true",
                        help="fail unless the identity scenario's "
                             "completion tables and filtered metric "
                             "snapshots are byte-identical across modes")
    parser.add_argument("--gate", type=float, default=0.0, metavar="FACTOR",
                        help="fail unless flow processes FACTOR x fewer "
                             "events than packet on the congested scenario")
    parser.add_argument("--waterfill-gate", type=float, default=0.0,
                        metavar="FACTOR",
                        help="fail unless the component-local water-fill "
                             "re-divides FACTOR x fewer flows than the "
                             "global algorithm would (congested scenario, "
                             "flow mode)")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="also run the congested permutation pod-"
                             "sharded across N worker processes "
                             "(Fabric.propose_pods + repro.sim.shard); "
                             "with --verify the in-process sequential "
                             "reference must agree exactly")
    parser.add_argument("--table", action="store_true",
                        help="print the per-transfer completion table for "
                             "each mode (diffable)")
    args = parser.parse_args(argv)
    if args.full:
        args.k = 16
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    for m in modes:
        if m not in MODES:
            print(f"unknown mode {m!r}", file=sys.stderr)
            return 2
    if args.gate and not {"packet", "flow"} <= set(modes):
        print("--gate needs both packet and flow modes", file=sys.stderr)
        return 2
    if args.waterfill_gate and "flow" not in modes:
        print("--waterfill-gate needs flow mode", file=sys.stderr)
        return 2
    scenarios = (("identity", "congested") if args.scenario == "both"
                 else (args.scenario,))
    status = 0
    for scenario in scenarios:
        sc = run_scenario(args.k, scenario, args.size, modes)
        hosts = args.k ** 3 // 4
        print(f"[topo] fat-tree k={args.k} ({hosts} hosts) "
              f"scenario={scenario} size={args.size}")
        print(f"  {'mode':8s} {'final_ns':>14s} {'events':>12s} "
              f"{'ev/MiB':>10s} {'wall_s':>8s}")
        for mode in modes:
            r = sc["results"][mode]
            print(f"  {mode:8s} {r['now']:>14d} {r['events']:>12d} "
                  f"{r['events_per_mib']:>10.0f} {r['wall_s']:>8.2f}")
        if "event_reduction" in sc:
            print(f"  flow vs packet: {sc['event_reduction']:.1f}x fewer "
                  "engine events")
        if args.table:
            for mode in modes:
                print(f"  --- completions [{mode}] ---")
                print(completion_table(sc["results"][mode]))
        if scenario == "identity" and args.verify:
            ok = sc["completions_identical"] and sc["obs_identical"]
            print(f"  [verify] completions identical: "
                  f"{sc['completions_identical']}, metrics identical: "
                  f"{sc['obs_identical']}")
            if not ok:
                status = 1
        if scenario == "congested" and args.gate:
            ok = sc["event_reduction"] >= args.gate
            print(f"  [gate] event reduction {sc['event_reduction']:.1f}x "
                  f">= {args.gate:g}x: {'PASS' if ok else 'FAIL'}")
            if not ok:
                status = 1
        if scenario == "congested" and args.waterfill_gate:
            stats = sc["results"]["flow"]["flow_stats"]
            red = stats["work_reduction"] or 0.0
            ok = red >= args.waterfill_gate
            print(f"  [waterfill] {stats['recomputes']} component "
                  f"recomputes over {stats['flushes']} flushes; "
                  f"{stats['touched']} flows re-divided vs "
                  f"{stats['global_equiv']} global — {red:.1f}x >= "
                  f"{args.waterfill_gate:g}x: {'PASS' if ok else 'FAIL'}")
            if not ok:
                status = 1
    if args.parallel:
        sh = run_topo_sharded(args.k, args.size, args.parallel,
                              verify=args.verify)
        print(f"[topo] pod-sharded congested run: {sh['nshards']} shards, "
              f"{sh['borders']} border trunks")
        print(f"  sharded   {sh['now_ns']:>14d} ns  "
              f"{sh['events_sharded']:>12d} events  "
              f"{sh['wall_s_sharded']:>8.2f} s")
        if args.verify:
            print(f"  sequential{sh['now_ns']:>14d} ns  "
                  f"{sh['events_sequential']:>12d} events  "
                  f"{sh['wall_s_sequential']:>8.2f} s")
            print(f"  [verify] sharded completions identical: "
                  f"{sh['identical']} (speedup {sh['speedup']:.2f}x)")
            if not sh["identical"]:
                status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
