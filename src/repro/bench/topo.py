"""Fabric benchmark: hybrid flow fidelity on fat-tree topologies.

``python -m repro.bench topo`` runs all-hosts transfer patterns over a
k-ary fat-tree (:func:`repro.cluster.topo.fat_tree`) in each of the
engine's three fidelity modes — ``packet`` (coalescing off), ``train``
(packet-train wire fast path) and ``flow`` (analytic steady-state flow
reservations, :mod:`repro.hw.flow`) — and compares engine event counts
and completion times.

Two scenarios:

* ``identity`` — same-edge pairwise exchange: host ``i`` swaps
  ``size`` bytes with host ``i ^ 1`` under the same edge switch.  Every
  link direction carries exactly one transfer, so flows stay pristine
  and the analytic model is *exactly* equivalent: completion tables and
  the (train/flow-filtered) metrics snapshot must be byte-identical
  across all three modes.  ``--verify`` enforces that; the CI
  ``topo-smoke`` job runs it on every push.

* ``congested`` — cross-pod shift permutation: host ``i`` sends to
  ``(i + hosts_per_pod) mod n``, pushing every transfer through the
  core over ECMP-shared trunks.  Here max-min fair sharing approximates
  FIFO packet interleaving, so completion times may deviate slightly
  (documented in DESIGN.md §6); the gate is the *event* count — the
  flow path must process at least ``--gate``× fewer engine events than
  packet fidelity (CI requires 10×).

``--full`` switches from the default k=8 (128 hosts) to k=16
(1024 hosts); that run takes minutes and is the scale quoted in
BENCH_engine.json's ``topo`` section only for ``--full`` runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from .. import obs
from ..cluster.topo import fat_tree
from ..mem import sglist
from ..hw import flow as flowmod
from ..hw import train
from ..hw.params import host_params
from ..sim import Environment
from ..units import KiB, MiB
from .netpipe import prepare_pair
from .transports import MxTransport

MODES = ("packet", "train", "flow")

#: Metric families describing an *optimization* rather than the model;
#: the only ones allowed to differ between fidelity modes.
_MODE_PRIVATE = ("net.train", "net.flow")


def pairs_for(scenario: str, k: int, n: int) -> list:
    """(src, dst) transfer list for a scenario on an n-host k-ary tree."""
    if scenario == "identity":
        # Same-edge exchange needs an even host count per edge switch.
        if (k // 2) % 2:
            raise ValueError(
                f"identity scenario needs k/2 even (k/2 hosts per edge "
                f"switch, paired two by two), got k={k}")
        return [(i, i ^ 1) for i in range(n)]
    if scenario == "congested":
        per_pod = (k // 2) * (k // 2)
        return [(i, (i + per_pod) % n) for i in range(n)]
    raise ValueError(f"unknown scenario {scenario!r}")


def filtered_obs(snapshot: dict) -> dict:
    """Snapshot minus the train/flow-only families (mode-private)."""
    out = {}
    for section in ("counters", "gauges", "histograms"):
        out[section] = {
            k: v for k, v in snapshot[section].items()
            if not k.startswith(_MODE_PRIVATE)
        }
    return out


def run_topo(k: int, scenario: str, mode: str, size: int = 256 * KiB) -> dict:
    """One fat-tree scenario in one fidelity mode.

    Returns the final clock, engine event count, a deterministic
    per-transfer completion table (list of ``(src, dst, done_ns)``) and
    the mode-filtered metrics snapshot.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    flowmod.set_flow_mode(mode == "flow")
    train.set_coalescing(mode != "packet")
    # The host-copy accumulator is process-global; reset it so the
    # mem.host_copies collector reports this run, not the session.
    sglist.HOST_COPIES.reset()
    registry = obs.MetricsRegistry()
    try:
        with obs.installed_registry(registry):
            env = Environment()
            # Transfers never touch more than a few MiB of frames; a
            # small pool keeps the 1024-host build cheap.
            fabric = fat_tree(env, k, host=host_params(memory_frames=2048))
            n = len(fabric.nodes)
            pairs = pairs_for(scenario, k, n)
            senders = {}
            receivers = {}
            for src, dst in pairs:
                senders[(src, dst)] = MxTransport(
                    fabric.nodes[src], 1, peer_node=dst, peer_ep=2,
                    context="kernel")
                receivers[(src, dst)] = MxTransport(
                    fabric.nodes[dst], 2, peer_node=src, peer_ep=1,
                    context="kernel")
            for p in pairs:
                prepare_pair(env, senders[p], receivers[p], size)
            done = {}

            def tx(t):
                yield from t.send(size)

            def rx(p, t):
                yield from t.recv(size)
                done[p] = env.now

            t0 = time.perf_counter()
            ev0 = env.events_processed
            for p in pairs:
                env.process(tx(senders[p]))
                env.process(rx(p, receivers[p]))
            env.run()
            wall = time.perf_counter() - t0
            table = [(src, dst, done[(src, dst)]) for src, dst in pairs]
            payload_mib = len(pairs) * size / MiB
            return {
                "mode": mode,
                "k": k,
                "hosts": n,
                "scenario": scenario,
                "size": size,
                "now": env.now,
                "events": env.events_processed - ev0,
                "events_per_mib": (env.events_processed - ev0) / payload_mib,
                "wall_s": wall,
                "completions": table,
                "obs": filtered_obs(registry.snapshot()),
            }
    finally:
        flowmod.set_flow_mode(True)
        train.set_coalescing(True)


def completion_table(result: dict) -> str:
    """Render the per-transfer completion times (diffable across modes)."""
    lines = [f"{src:>5d} -> {dst:>5d}  {t:>14d} ns"
             for src, dst, t in result["completions"]]
    return "\n".join(lines)


def run_scenario(k: int, scenario: str, size: int,
                 modes=MODES) -> dict:
    """All requested modes on one scenario, plus cross-mode digests."""
    results = {mode: run_topo(k, scenario, mode, size) for mode in modes}
    out: dict = {"scenario": scenario, "results": results}
    if "packet" in results and "flow" in results:
        out["event_reduction"] = (results["packet"]["events"]
                                  / results["flow"]["events"])
    ref = results[modes[0]]
    out["completions_identical"] = all(
        r["completions"] == ref["completions"] for r in results.values())
    out["obs_identical"] = all(
        r["obs"] == ref["obs"] for r in results.values())
    return out


# ---------------------------------------------------------------------------
# perf-harness section (BENCH_engine.json)
# ---------------------------------------------------------------------------


def bench_topo(quick: bool = False) -> dict:
    """``topo`` section of the perf report.

    Event counts are deterministic, so CI gates directly on
    ``event_reduction`` (>= 10x on the congested permutation) and on the
    identity scenario's byte-identical completion tables and metric
    snapshots.  ``quick`` drops to k=4 (16 hosts) for the smoke run.
    """
    k = 4 if quick else 8
    size = 64 * KiB if quick else 256 * KiB
    congested = run_scenario(k, "congested", size)
    identity = run_scenario(k, "identity", size)

    def digest(sc: dict) -> dict:
        return {
            "events": {m: r["events"] for m, r in sc["results"].items()},
            "events_per_mib": {m: round(r["events_per_mib"], 1)
                               for m, r in sc["results"].items()},
            "now_ns": {m: r["now"] for m, r in sc["results"].items()},
            "wall_s": {m: r["wall_s"] for m, r in sc["results"].items()},
            "event_reduction": sc["event_reduction"],
            "completions_identical": sc["completions_identical"],
            "obs_identical": sc["obs_identical"],
        }

    return {
        "k": k,
        "hosts": k ** 3 // 4,
        "size": size,
        "congested": digest(congested),
        "identity": digest(identity),
        "summary": {
            "event_reduction": congested["event_reduction"],
            "events_per_mib_flow":
                congested["results"]["flow"]["events_per_mib"],
            "identity_completions_identical":
                identity["completions_identical"],
            "identity_obs_identical": identity["obs_identical"],
        },
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench topo",
        description="Fat-tree fabric: packet vs train vs flow fidelity",
    )
    parser.add_argument("-k", type=int, default=8,
                        help="fat-tree arity (k^3/4 hosts; default 8)")
    parser.add_argument("--full", action="store_true",
                        help="k=16: the 1024-host configuration (slow; "
                             "several minutes)")
    parser.add_argument("--size", type=int, default=256 * KiB,
                        help="bytes per transfer (default 256 KiB)")
    parser.add_argument("--scenario", choices=("identity", "congested",
                                               "both"),
                        default="both")
    parser.add_argument("--modes", default="packet,train,flow",
                        help="comma-separated subset of packet,train,flow")
    parser.add_argument("--verify", action="store_true",
                        help="fail unless the identity scenario's "
                             "completion tables and filtered metric "
                             "snapshots are byte-identical across modes")
    parser.add_argument("--gate", type=float, default=0.0, metavar="FACTOR",
                        help="fail unless flow processes FACTOR x fewer "
                             "events than packet on the congested scenario")
    parser.add_argument("--table", action="store_true",
                        help="print the per-transfer completion table for "
                             "each mode (diffable)")
    args = parser.parse_args(argv)
    if args.full:
        args.k = 16
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    for m in modes:
        if m not in MODES:
            print(f"unknown mode {m!r}", file=sys.stderr)
            return 2
    if args.gate and not {"packet", "flow"} <= set(modes):
        print("--gate needs both packet and flow modes", file=sys.stderr)
        return 2
    scenarios = (("identity", "congested") if args.scenario == "both"
                 else (args.scenario,))
    status = 0
    for scenario in scenarios:
        sc = run_scenario(args.k, scenario, args.size, modes)
        hosts = args.k ** 3 // 4
        print(f"[topo] fat-tree k={args.k} ({hosts} hosts) "
              f"scenario={scenario} size={args.size}")
        print(f"  {'mode':8s} {'final_ns':>14s} {'events':>12s} "
              f"{'ev/MiB':>10s} {'wall_s':>8s}")
        for mode in modes:
            r = sc["results"][mode]
            print(f"  {mode:8s} {r['now']:>14d} {r['events']:>12d} "
                  f"{r['events_per_mib']:>10.0f} {r['wall_s']:>8.2f}")
        if "event_reduction" in sc:
            print(f"  flow vs packet: {sc['event_reduction']:.1f}x fewer "
                  "engine events")
        if args.table:
            for mode in modes:
                print(f"  --- completions [{mode}] ---")
                print(completion_table(sc["results"][mode]))
        if scenario == "identity" and args.verify:
            ok = sc["completions_identical"] and sc["obs_identical"]
            print(f"  [verify] completions identical: "
                  f"{sc['completions_identical']}, metrics identical: "
                  f"{sc['obs_identical']}")
            if not ok:
                status = 1
        if scenario == "congested" and args.gate:
            ok = sc["event_reduction"] >= args.gate
            print(f"  [gate] event reduction {sc['event_reduction']:.1f}x "
                  f">= {args.gate:g}x: {'PASS' if ok else 'FAIL'}")
            if not ok:
                status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
