"""Streaming (unidirectional, windowed) bandwidth measurement.

NetPIPE-style ping-pong (:mod:`repro.bench.netpipe`) charges a full
round trip per message, so per-message latency suppresses medium-size
bandwidth.  Streaming keeps ``window`` messages in flight and measures
the drain rate — how an application that overlaps communication sees the
network.  Comparing the two methodologies is itself instructive: GM's
send-side bounce copies vanish under streaming (they pipeline with the
wire) but not under ping-pong; see
``benchmarks/bench_ablation_methodology.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment
from ..units import bandwidth_mb_s


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one streaming measurement."""

    size: int
    messages: int
    window: int
    elapsed_ns: int

    @property
    def bandwidth_mb_s(self) -> float:
        return bandwidth_mb_s(self.size * self.messages, self.elapsed_ns)


def stream(
    env: Environment,
    sender,
    receiver,
    size: int,
    messages: int = 32,
    window: int = 8,
    warmup: int = 4,
) -> StreamResult:
    """Push ``messages`` of ``size`` bytes one way with ``window``
    receives pre-posted; measures receiver-observed drain time.

    Both transports must already be ``prepare``d.  The sender issues
    back-to-back sends; the receiver keeps the window full.  Timing
    starts when the first measured message lands and ends at the last.
    """
    if messages < 1 or window < 1:
        raise ValueError("messages and window must be >= 1")
    total = messages + warmup
    stamps: list[int] = []

    def sender_proc(env):
        for i in range(total):
            yield from sender.send(size, match=0)

    def receiver_proc(env):
        for i in range(total):
            yield from receiver.recv(size)
            if i == warmup - 1 or (warmup == 0 and i == 0):
                stamps.append(env.now)
        stamps.append(env.now)

    env.process(sender_proc(env), name="stream.tx")
    rx = env.process(receiver_proc(env), name="stream.rx")
    env.run(until=rx)
    elapsed = stamps[-1] - stamps[0]
    return StreamResult(size=size, messages=messages, window=window,
                        elapsed_ns=elapsed)
