"""NetPIPE-style ping-pong measurement (paper's methodology, section 5.3).

Two processes bounce a message of fixed size; one-way latency is half
the mean round-trip over the measured rounds (after warmup), and
bandwidth is ``size / one_way`` — exactly how NetPIPE plots both of the
paper's metric kinds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment
from ..units import bandwidth_mb_s, to_us


@dataclass(frozen=True)
class PingPongResult:
    """Outcome of one ping-pong measurement at one message size."""

    size: int
    rounds: int
    one_way_ns: float

    @property
    def one_way_us(self) -> float:
        return to_us(self.one_way_ns)

    @property
    def bandwidth_mb_s(self) -> float:
        return bandwidth_mb_s(self.size, round(self.one_way_ns))


def ping_pong(
    env: Environment,
    initiator,
    responder,
    size: int,
    rounds: int = 20,
    warmup: int = 2,
) -> PingPongResult:
    """Run a ping-pong between two prepared :class:`Transport` ends.

    The initiator sends first; both sides loop ``warmup + rounds``
    times.  Only the measured rounds contribute to the average.
    """
    if rounds < 1:
        raise ValueError(f"need at least 1 measured round, got {rounds}")
    timestamps: list[int] = []

    def initiator_proc(env):
        for i in range(warmup + rounds):
            if i == warmup:
                timestamps.append(env.now)
            yield from initiator.send(size, match=i)
            yield from initiator.recv(size)
        timestamps.append(env.now)

    def responder_proc(env):
        for i in range(warmup + rounds):
            yield from responder.recv(size)
            yield from responder.send(size, match=i)

    a = env.process(initiator_proc(env), name="pingpong.a")
    env.process(responder_proc(env), name="pingpong.b")
    env.run(until=a)
    elapsed = timestamps[1] - timestamps[0]
    return PingPongResult(size=size, rounds=rounds, one_way_ns=elapsed / (2 * rounds))


def prepare_pair(env: Environment, a, b, max_size: int) -> None:
    """Drive both transports' ``prepare`` to completion."""
    pa = env.process(a.prepare(max_size), name="prep.a")
    pb = env.process(b.prepare(max_size), name="prep.b")
    env.run(until=env.all_of([pa, pb]))


def sweep(
    env: Environment,
    a,
    b,
    sizes: list[int],
    rounds: int = 20,
    warmup: int = 2,
    prepare: bool = True,
) -> list[PingPongResult]:
    """Ping-pong over a list of message sizes on one transport pair."""
    if prepare:
        prepare_pair(env, a, b, max(sizes))
    return [ping_pong(env, a, b, size, rounds, warmup) for size in sizes]


#: The size ladders the paper's figures use (powers of two, with the
#: figure-specific ranges).
def pow2_sizes(lo: int, hi: int) -> list[int]:
    """Powers of two from lo to hi inclusive."""
    if lo < 1 or hi < lo:
        raise ValueError(f"bad size range [{lo}, {hi}]")
    sizes = []
    s = lo
    while s <= hi:
        sizes.append(s)
        s *= 2
    return sizes
