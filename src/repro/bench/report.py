"""Plain-text rendering of benchmark series and tables.

The figure drivers print the same rows/series the paper plots; these
helpers keep the output uniform and diff-friendly (EXPERIMENTS.md embeds
them verbatim).
"""

from __future__ import annotations

from typing import Sequence


def _fmt_size(size: int) -> str:
    if size >= 1024 * 1024 and size % (1024 * 1024) == 0:
        return f"{size // (1024 * 1024)}M"
    if size >= 1024 and size % 1024 == 0:
        return f"{size // 1024}k"
    return str(size)


def format_series(
    title: str,
    xlabel: str,
    xs: Sequence[int],
    columns: dict[str, Sequence[float]],
    unit: str,
    precision: int = 1,
) -> str:
    """Render one figure's data: x values down, one column per series."""
    for name, ys in columns.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(xs)} x values")
    headers = [xlabel] + [f"{name} ({unit})" for name in columns]
    rows = []
    for i, x in enumerate(xs):
        rows.append([_fmt_size(x)] + [f"{ys[i]:.{precision}f}" for ys in columns.values()])
    return format_table(title, headers, rows)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned ASCII table with a title rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match headers {headers!r}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt_row(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [f"== {title} ==", fmt_row(headers), rule]
    lines += [fmt_row(row) for row in rows]
    return "\n".join(lines)
