"""Plain-text rendering of benchmark series and tables.

The figure drivers print the same rows/series the paper plots; these
helpers keep the output uniform and diff-friendly (EXPERIMENTS.md embeds
them verbatim).
"""

from __future__ import annotations

from typing import Sequence


def _fmt_size(size: int) -> str:
    if size >= 1024 * 1024 and size % (1024 * 1024) == 0:
        return f"{size // (1024 * 1024)}M"
    if size >= 1024 and size % 1024 == 0:
        return f"{size // 1024}k"
    return str(size)


def format_series(
    title: str,
    xlabel: str,
    xs: Sequence[int],
    columns: dict[str, Sequence[float]],
    unit: str,
    precision: int = 1,
) -> str:
    """Render one figure's data: x values down, one column per series."""
    for name, ys in columns.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(xs)} x values")
    headers = [xlabel] + [f"{name} ({unit})" for name in columns]
    rows = []
    for i, x in enumerate(xs):
        rows.append([_fmt_size(x)] + [f"{ys[i]:.{precision}f}" for ys in columns.values()])
    return format_table(title, headers, rows)


def format_metrics(snapshot: dict) -> str:
    """Render a metrics registry snapshot (see ``repro.obs``) as the
    same aligned tables the figure drivers print.

    Counters and gauges become one two-column table each; every
    histogram gets its own table with count/sum/mean summary rows
    followed by the non-empty buckets.  Keys are already sorted by the
    snapshot itself (stable JSON), so the rendering is deterministic.
    """
    sections = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [[k, str(v)] for k, v in sorted(counters.items())]
        sections.append(format_table("metrics: counters",
                                     ["counter", "value"], rows))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [[k, str(v)] for k, v in sorted(gauges.items())]
        sections.append(format_table("metrics: gauges",
                                     ["gauge", "value"], rows))
    for key, hist in sorted(snapshot.get("histograms", {}).items()):
        count = hist.get("count", 0)
        total = hist.get("sum", 0)
        mean = total / count if count else 0.0
        rows = [["count", str(count)], ["sum", str(total)],
                ["mean", f"{mean:.1f}"]]
        for bound, n in hist.get("buckets", []):
            if n:
                rows.append([f"<= {bound}", str(n)])
        if hist.get("overflow"):
            rows.append(["overflow", str(hist["overflow"])])
        sections.append(format_table(f"histogram: {key}",
                                     ["bucket", "count"], rows))
    if not sections:
        return "== metrics: empty =="
    return "\n\n".join(sections)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned ASCII table with a title rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match headers {headers!r}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt_row(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [f"== {title} ==", fmt_row(headers), rule]
    lines += [fmt_row(row) for row in rows]
    return "\n".join(lines)
