"""CLI entry point: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.bench fig5a          # one experiment
    python -m repro.bench table1
    python -m repro.bench all            # everything (several minutes)
    python -m repro.bench fig6 --json    # machine-readable series
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import json
import sys

from .figures import FIGURES, run_figure

ALL = sorted(FIGURES) + ["table1"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate tables/figures of Goglin et al., CLUSTER 2005",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"experiment names ({', '.join(ALL)}) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--json", action="store_true",
                        help="emit the series as JSON instead of tables "
                             "(table1 is text-only and is skipped)")
    args = parser.parse_args(argv)
    if args.list or not args.experiments:
        print("\n".join(ALL))
        return 0
    names = ALL if args.experiments == ["all"] else args.experiments
    if args.json:
        out = {}
        for name in names:
            if name == "table1":
                continue
            try:
                fn = FIGURES[name]
            except KeyError:
                print(f"unknown experiment {name!r}", file=sys.stderr)
                return 2
            data = fn()
            out[name] = {
                "title": data.title,
                "xlabel": data.xlabel,
                "unit": data.unit,
                "xs": list(data.xs),
                "series": {k: list(v) for k, v in data.series.items()},
            }
        print(json.dumps(out, indent=2))
        return 0
    for name in names:
        try:
            print(run_figure(name))
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
