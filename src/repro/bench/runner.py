"""CLI entry point: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.bench fig5a          # one experiment
    python -m repro.bench table1
    python -m repro.bench all            # everything (several minutes)
    python -m repro.bench all --parallel 4   # fan out over 4 processes
    python -m repro.bench all --timings  # per-figure wall-clock to stderr
    python -m repro.bench fig6 --json    # machine-readable series
    python -m repro.bench --list

Every figure driver builds its own :class:`~repro.sim.Environment`, so
the experiments share no state and ``--parallel N`` can fan them out
over a ``ProcessPoolExecutor``.  Results are printed in the requested
order regardless of which worker finishes first, so parallel output is
byte-identical to sequential output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .. import obs
from ..sim.engine import Environment
from .figures import FIGURES, run_figure
from .report import format_metrics

ALL = sorted(FIGURES) + ["table1"]


def _mark_figure(name: str) -> None:
    """Drop a figure-boundary marker on the ambient timeline (no-op when
    observability is off, and in parallel workers, which never inherit
    the ambient timeline)."""
    tl = obs.active_timeline()
    if tl is not None:
        tl.instant(0, "bench", f"figure:{name}")


def _run_text(name: str) -> tuple[str, str, float, int]:
    """Worker: render one experiment; returns (name, text, seconds, events)."""
    t0 = time.perf_counter()
    ev0 = Environment.lifetime_events_processed
    _mark_figure(name)
    text = run_figure(name)
    events = Environment.lifetime_events_processed - ev0
    return name, text, time.perf_counter() - t0, events


def _run_json(name: str) -> tuple[str, dict, float, int]:
    """Worker: run one figure for --json; returns (name, payload, seconds,
    events)."""
    t0 = time.perf_counter()
    ev0 = Environment.lifetime_events_processed
    _mark_figure(name)
    data = FIGURES[name]()
    payload = {
        "title": data.title,
        "xlabel": data.xlabel,
        "unit": data.unit,
        "xs": list(data.xs),
        "series": {k: list(v) for k, v in data.series.items()},
    }
    events = Environment.lifetime_events_processed - ev0
    return name, payload, time.perf_counter() - t0, events


def _execute(names: list[str], worker, jobs: int):
    """Run ``worker`` over ``names``, optionally in parallel; keep order."""
    if jobs > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = {name: (payload, secs, events)
                       for name, payload, secs, events
                       in pool.map(worker, names)}
        return [(name, *results[name]) for name in names]
    return [worker(name) for name in names]


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "faults":
        # The chaos driver is its own subcommand, deliberately NOT part
        # of ``all``: zero-fault figure output must stay byte-identical.
        from .faults import main as faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "replica":
        # Replicated-volume chaos matrix: failover latency and
        # linearizability verdicts.  Also deliberately not part of
        # ``all`` (same figure-identity argument as ``faults``).
        from .replica import main as replica_main

        return replica_main(argv[1:])
    if argv and argv[0] == "topo":
        # Fat-tree fabric A/B: packet vs train vs flow fidelity.  Not
        # part of ``all`` — the paper's figures are two-node topologies
        # and must stay byte-identical regardless of fabric work.
        from .topo import main as topo_main

        return topo_main(argv[1:])
    if argv and argv[0] == "fleet":
        # Declarative experiment sweeps (open-loop load over a grid of
        # topologies/fidelities/workloads).  Not part of ``all`` — the
        # paper's figures are fixed two-node experiments and must stay
        # byte-identical regardless of fleet work.
        from .fleet import main as fleet_main

        return fleet_main(argv[1:])
    if argv and argv[0] == "shard":
        # Sharded execution of the two-node figures: one worker process
        # per node, synchronised by the wire's propagation lookahead.
        from .shard import main as shard_main

        return shard_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate tables/figures of Goglin et al., CLUSTER 2005",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"experiment names ({', '.join(ALL)}) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--json", action="store_true",
                        help="emit the series as JSON instead of tables "
                             "(table1 is text-only and is skipped)")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="run experiments over N worker processes; 0 "
                             "means auto (one per CPU core). Each figure "
                             "builds its own Environment, so results are "
                             "identical to a sequential run")
    parser.add_argument("--timings", action="store_true",
                        help="report per-experiment wall-clock on stderr")
    parser.add_argument("--metrics", metavar="OUT.json",
                        help="collect a metrics snapshot over the whole run "
                             "and write it to OUT.json (also prints a table "
                             "to stderr; forces sequential execution)")
    parser.add_argument("--timeline", metavar="OUT.trace.json",
                        help="record a Chrome trace-event timeline and write "
                             "it to OUT.trace.json (load in Perfetto / "
                             "chrome://tracing; forces sequential execution)")
    args = parser.parse_args(argv)
    if args.list or not args.experiments:
        print("\n".join(ALL))
        return 0
    if args.parallel < 0:
        print(f"--parallel must be >= 0, got {args.parallel}", file=sys.stderr)
        return 2
    if args.parallel == 0:
        args.parallel = os.cpu_count() or 1
    observing = args.metrics or args.timeline
    if observing and args.parallel > 1:
        # Parallel workers can't share one ambient registry/timeline;
        # refusing beats silently collecting a fraction of the run.
        print("--metrics/--timeline require --parallel 1", file=sys.stderr)
        return 2
    names = ALL if args.experiments == ["all"] else args.experiments
    for name in names:
        if name not in ALL:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2

    registry = timeline = None
    if args.metrics:
        registry = obs.MetricsRegistry()
        obs.install_registry(registry)
    if args.timeline:
        timeline = obs.Timeline()
        obs.install_timeline(timeline)
    t_all = time.perf_counter()
    try:
        if args.json:
            names = [n for n in names if n != "table1"]
            results = _execute(names, _run_json, args.parallel)
            print(json.dumps({name: payload for name, payload, *_ in results},
                             indent=2))
        else:
            results = _execute(names, _run_text, args.parallel)
            for _, text, *_ in results:
                print(text)
                print()
    finally:
        if registry is not None:
            obs.uninstall_registry()
        if timeline is not None:
            obs.uninstall_timeline()
    if registry is not None:
        registry.write(args.metrics)
        print(format_metrics(registry.snapshot()), file=sys.stderr)
    if timeline is not None:
        timeline.write(args.timeline)
    if args.timings:
        total_events = 0
        for name, _, secs, events in results:
            total_events += events
            print(f"[timing] {name:8s} {secs:7.3f} s  {events:>10d} events",
                  file=sys.stderr)
        print(f"[timing] total    {time.perf_counter() - t_all:7.3f} s  "
              f"{total_events:>10d} events (parallel={args.parallel})",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
