"""CLI driver for experiment fleets: ``python -m repro.bench fleet``.

Loads a declarative sweep spec (see :mod:`repro.fleet.spec`), expands
the grid, runs every point — optionally over a process pool — and
prints a tidy summary table.  ``--out PREFIX`` additionally writes
``PREFIX.json`` (the canonical sorted-key results document) and
``PREFIX.csv``; both are byte-identical across reruns and across
``--parallel`` settings, which ``--verify`` double-checks by running
the whole sweep twice and diffing the bytes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from ..cluster.topo import route_cache_stats
from ..fleet.runner import (FLEET_SCHEMA, FleetResult, render_csv,
                            render_json, run_fleet)
from ..fleet.spec import FleetSpec, FleetSpecError
from .report import format_table

#: Summary-table columns (full detail lives in the JSON/CSV outputs).
_TABLE_COLS = ("index", "topology", "mode", "workload", "arrivals",
               "offered_load", "fault", "achieved_rate_ops_s", "fairness",
               "p50_ns", "p99_ns")


def summary_table(result: FleetResult) -> str:
    rows = []
    for row in result.rows:
        cells = result.row_cells(row)
        rows.append([
            str(cells["index"]), cells["topology"], cells["mode"],
            cells["workload"], cells["arrivals"],
            f"{cells['offered_load']:g}", cells["fault"],
            f"{cells['achieved_rate_ops_s']:.0f}",
            f"{cells['fairness']:.3f}",
            f"{cells['p50_ns'] / 1000:.0f}",
            f"{cells['p99_ns'] / 1000:.0f}",
        ])
    headers = ["#", "topology", "mode", "workload", "arrivals",
               "offered/s", "fault", "achieved/s", "fairness",
               "p50 (us)", "p99 (us)"]
    name = result.spec.get("name", "fleet")
    return format_table(f"fleet {name}: {len(result.rows)} points",
                        headers, rows)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench fleet",
        description="Declarative experiment sweeps: topology x fidelity "
                    "x workload x offered load x faults",
    )
    parser.add_argument("--spec", metavar="SPEC.json",
                        help="fleet spec file (see --schema)")
    parser.add_argument("--schema", action="store_true",
                        help="print the spec-file field reference and exit")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan grid points out over N worker processes "
                             "(results are byte-identical to sequential)")
    parser.add_argument("--out", metavar="PREFIX",
                        help="write PREFIX.json and PREFIX.csv")
    parser.add_argument("--verify", action="store_true",
                        help="run the sweep twice and fail unless the "
                             "results bytes are identical")
    parser.add_argument("--timings", action="store_true",
                        help="report wall-clock and route-cache stats "
                             "on stderr")
    args = parser.parse_args(argv)
    if args.schema:
        print(json.dumps(FLEET_SCHEMA, indent=2))
        return 0
    if not args.spec:
        print("--spec is required (or --schema for the reference)",
              file=sys.stderr)
        return 2
    if args.parallel < 1:
        print(f"--parallel must be >= 1, got {args.parallel}",
              file=sys.stderr)
        return 2
    try:
        spec = FleetSpec.from_file(args.spec)
    except FleetSpecError as exc:
        print(f"bad fleet spec: {exc}", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    result = run_fleet(spec, parallel=args.parallel)
    elapsed = time.perf_counter() - t0
    print(summary_table(result))
    status = 0
    if args.verify:
        again = run_fleet(spec, parallel=args.parallel)
        identical = render_json(result) == render_json(again)
        print(f"[verify] rerun byte-identical: {identical}")
        if not identical:
            status = 1
    if args.out:
        json_path = f"{args.out}.json"
        csv_path = f"{args.out}.csv"
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(render_json(result))
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write(render_csv(result))
        print(f"[fleet] wrote {json_path} and {csv_path}")
    if args.timings:
        stats = route_cache_stats()
        print(f"[timing] {len(result.rows)} points in {elapsed:.2f} s "
              f"(parallel={args.parallel}); route cache "
              f"hits={stats['hits']} misses={stats['misses']}",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
