"""Transport adapters: one uniform send/recv interface per protocol stack.

A :class:`Transport` owns one side of a connection and exposes two
generators — ``send(size, match)`` and ``recv(size, match)`` — plus a
``prepare(max_size)`` that allocates (and registers, where the API
demands it) the buffers.  The NetPIPE harness then runs identical
ping-pong logic over GM, MX, or any zero-copy socket.

Buffer reuse matters and is faithful: GM transports register once and
reuse ("GM benefits here from a 100 % reuse of the application buffers",
section 5.1), MX never registers.
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..cluster.node import Node
from ..errors import ReproError
from ..gm.api import GmEventKind, GmPort
from ..gm.kernel import GmKernelPort
from ..mem.layout import sg_from_frames
from ..mx.api import MxEndpoint
from ..mx.memtypes import MxSegment
from ..units import PAGE_SIZE, page_align_up


class Transport(Protocol):
    """What the ping-pong harness needs from a protocol stack."""

    node: Node

    def prepare(self, max_size: int): ...  # generator
    def send(self, size: int, match: int = 0): ...  # generator
    def recv(self, size: int, match: Optional[int] = None): ...  # generator


class GmUserTransport:
    """GM from user space: registered buffers, unified event queue."""

    def __init__(self, node: Node, port_id: int, peer_node: int, peer_port: int):
        self.node = node
        self.space = node.new_process_space()
        self.port = GmPort(node, port_id, self.space)
        self.peer_node = peer_node
        self.peer_port = peer_port
        self.send_vaddr = 0
        self.recv_vaddr = 0

    def prepare(self, max_size: int):
        size = page_align_up(max(max_size, PAGE_SIZE))
        self.send_vaddr = self.space.mmap(size, populate=True)
        self.recv_vaddr = self.space.mmap(size, populate=True)
        yield from self.port.register(self.send_vaddr, size)
        yield from self.port.register(self.recv_vaddr, size)

    def send(self, size: int, match: int = 0):
        yield from self.port.send(
            self.peer_node, self.peer_port, self.send_vaddr, size, match=match
        )

    def recv(self, size: int, match: Optional[int] = None):
        yield from self.port.provide_receive_buffer(self.recv_vaddr, size, match=match)
        while True:
            event = yield from self.port.receive_event()
            if event.kind is GmEventKind.RECV:
                return event
            # SENT events from our own previous sends drain here, as a
            # real GM event loop must.


class GmKernelTransport:
    """GM from kernel context.

    ``addressing='virtual'`` registers kernel vmalloc buffers and lets
    the NIC translate (stock behaviour); ``addressing='physical'`` uses
    the paper's physical-address primitives (section 3.3) and skips
    registration and translation entirely.
    """

    def __init__(self, node: Node, port_id: int, peer_node: int, peer_port: int,
                 addressing: str = "virtual"):
        if addressing not in ("virtual", "physical"):
            raise ReproError(f"unknown addressing {addressing!r}")
        self.node = node
        self.port = GmKernelPort(node, port_id)
        self.peer_node = peer_node
        self.peer_port = peer_port
        self.addressing = addressing
        self.send_alloc = None
        self.recv_alloc = None

    def prepare(self, max_size: int):
        size = page_align_up(max(max_size, PAGE_SIZE))
        self.send_alloc = self.node.kspace.vmalloc(size)
        self.recv_alloc = self.node.kspace.vmalloc(size)
        if self.addressing == "virtual":
            yield from self.port.register_kernel(self.send_alloc.vaddr, size)
            yield from self.port.register_kernel(self.recv_alloc.vaddr, size)
        else:
            return
            yield  # pragma: no cover

    def _sg(self, alloc, size: int):
        return sg_from_frames(alloc.frames, 0, size)

    def send(self, size: int, match: int = 0):
        if self.addressing == "virtual":
            yield from self.port.send_registered(
                self.peer_node, self.peer_port, self.send_alloc.vaddr, size, match=match
            )
        else:
            yield from self.port.send_physical(
                self.peer_node, self.peer_port, self._sg(self.send_alloc, size),
                match=match,
            )

    def recv(self, size: int, match: Optional[int] = None):
        if self.addressing == "virtual":
            yield from self.port.provide_receive_buffer_registered(
                self.recv_alloc.vaddr, size, match=match
            )
        else:
            yield from self.port.provide_receive_buffer_physical(
                self._sg(self.recv_alloc, size), match=match
            )
        while True:
            event = yield from self.port.receive_event()
            if event.kind is GmEventKind.RECV:
                return event


class MxTransport:
    """MX from user or kernel context, with optional copy removal.

    Kernel context uses kernel-virtual buffers by default;
    ``physical=True`` passes physical segments instead (the type an
    ORFS-like caller holding page-cache frames would pass).
    """

    def __init__(self, node: Node, endpoint_id: int, peer_node: int, peer_ep: int,
                 context: str = "user", physical: bool = False,
                 no_send_copy: bool = False, no_recv_copy: bool = False):
        self.node = node
        self.endpoint = MxEndpoint(
            node, endpoint_id, context=context,
            no_send_copy=no_send_copy, no_recv_copy=no_recv_copy,
        )
        self.peer_node = peer_node
        self.peer_ep = peer_ep
        self.context = context
        self.physical = physical
        self.space = node.new_process_space() if context == "user" else None
        self.send_ref = None
        self.recv_ref = None

    def prepare(self, max_size: int):
        size = page_align_up(max(max_size, PAGE_SIZE))
        if self.context == "user":
            send_vaddr = self.space.mmap(size, populate=True)
            recv_vaddr = self.space.mmap(size, populate=True)
            self.send_ref = (send_vaddr, size)
            self.recv_ref = (recv_vaddr, size)
        else:
            self.send_ref = self.node.kspace.kmalloc(size)
            self.recv_ref = self.node.kspace.kmalloc(size)
        return
        yield  # pragma: no cover

    def _segments(self, ref, size: int):
        if self.context == "user":
            vaddr, _ = ref
            return [MxSegment.user(self.space, vaddr, size)]
        if self.physical:
            return [MxSegment.physical(sg_from_frames(ref.frames, 0, size))]
        return [MxSegment.kernel(ref.vaddr, size)]

    def send(self, size: int, match: int = 0):
        req = yield from self.endpoint.isend(
            self.peer_node, self.peer_ep, self._segments(self.send_ref, size),
            match=match,
        )
        yield from self.endpoint.wait(req)

    def recv(self, size: int, match: Optional[int] = None):
        req = yield from self.endpoint.irecv(
            self._segments(self.recv_ref, size), match=match
        )
        result = yield from self.endpoint.wait(req)
        return result
