"""Engine/allocator self-benchmarks: track the simulator's own speed.

The paper's argument is that per-operation bookkeeping must come off the
data path; for this reproduction the "data path" is the discrete-event
engine and the physical frame allocator that every figure driver and
test exercises.  This module measures both in isolation —

* **engine**: events processed per second, split into the heap path
  (delayed timeouts) and the immediate path (delay-0 resource grants /
  Store hand-offs), via a timeout-chain workload and a Store ping-pong
  workload;
* **allocator**: single-frame alloc/free cycles per second and
  contiguous (kmalloc-style) allocations per second over a fragmented
  pool,

and writes the numbers to ``BENCH_engine.json`` so the performance
trajectory is visible across PRs.

Usage::

    python -m repro.bench.perf                 # full run, writes BENCH_engine.json
    python -m repro.bench.perf --quick         # CI smoke (~1 s)
    python -m repro.bench.perf --out path.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from ..mem import sglist
from ..mem.phys import PhysicalMemory
from ..sim import Environment
from ..sim.resources import Store
from ..units import KiB, MiB


# ---------------------------------------------------------------------------
# engine benchmarks
# ---------------------------------------------------------------------------


def bench_engine_heap(procs: int = 10, timeouts: int = 20_000) -> dict:
    """Events/sec through the heap: ``procs`` chains of delayed timeouts."""
    env = Environment()

    def chain(env, delay):
        for _ in range(timeouts):
            yield env.timeout(delay)

    for i in range(procs):
        env.process(chain(env, i + 1))
    # per process: 1 start + `timeouts` timeout events + 1 completion
    events = procs * (timeouts + 2)
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    return {"events": events, "elapsed_s": elapsed,
            "events_per_sec": events / elapsed}


def bench_engine_immediate(pairs: int = 10, rounds: int = 10_000) -> dict:
    """Events/sec through the immediate queue: Store ping-pong pairs."""
    env = Environment()

    def pinger(env, tx, rx):
        for _ in range(rounds):
            tx.put(1)
            yield rx.get()

    def ponger(env, tx, rx):
        for _ in range(rounds):
            yield rx.get()
            tx.put(1)

    for _ in range(pairs):
        a2b = Store(env, "a2b")
        b2a = Store(env, "b2a")
        env.process(pinger(env, a2b, b2a))
        env.process(ponger(env, b2a, a2b))
    # per pair per round: 2 get events (puts complete them inline);
    # plus 2 starts and 2 completions per pair
    events = pairs * (2 * rounds + 4)
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    return {"events": events, "elapsed_s": elapsed,
            "events_per_sec": events / elapsed}


# ---------------------------------------------------------------------------
# allocator benchmarks
# ---------------------------------------------------------------------------


def bench_alloc_single(frames: int = 4096, cycles: int = 20) -> dict:
    """Single-frame ops/sec: fill the pool, drain it, repeat."""
    phys = PhysicalMemory(frames)
    ops = 0
    t0 = time.perf_counter()
    for _ in range(cycles):
        allocated = [phys.alloc() for _ in range(frames)]
        for frame in allocated:
            phys.free(frame)
        ops += 2 * frames
    elapsed = time.perf_counter() - t0
    return {"ops": ops, "elapsed_s": elapsed, "ops_per_sec": ops / elapsed}


def bench_alloc_contiguous(frames: int = 4096, run_len: int = 8,
                           cycles: int = 200) -> dict:
    """Contiguous ops/sec over a fragmented pool (worst case for kmalloc).

    Fragments the pool by pinning every 16th frame, then repeatedly
    allocates and frees ``run_len``-frame runs from the holes between.
    """
    phys = PhysicalMemory(frames)
    step = 16
    holders = [phys.alloc() for _ in range(frames)]
    kept_pfns = {frame.pfn for frame in holders[::step]}
    for frame in holders:
        if frame.pfn not in kept_pfns:
            phys.free(frame)
    # free pool is now many short runs of (step-1) frames between pins
    ops = 0
    t0 = time.perf_counter()
    for _ in range(cycles):
        taken = [phys.alloc_contiguous(run_len)
                 for _ in range(frames // step // 2)]
        for run in taken:
            for frame in run:
                phys.free(frame)
        ops += 2 * len(taken)
    elapsed = time.perf_counter() - t0
    return {"ops": ops, "elapsed_s": elapsed, "ops_per_sec": ops / elapsed,
            "run_len": run_len, "free_runs": len(phys.free_runs())}


# ---------------------------------------------------------------------------
# data-path throughput / host-copy accounting
# ---------------------------------------------------------------------------

#: Sizes above this must show a wall-clock win from zero-copy plumbing.
_LARGE_CUTOFF = 32 * KiB


def bench_data_path(quick: bool = False) -> dict:
    """Host-copy counts and simulator MB/s through the real data paths.

    Runs a NetPIPE-style ping-pong over the GM-kernel-physical, MX-kernel
    and MX-kernel-with-copy-removal paths, in two host modes:

    * ``zero_copy`` — the normal simulator: payloads flow as
      :class:`repro.mem.PayloadRef` chunk views end-to-end.
    * ``legacy`` — :func:`repro.mem.sglist.set_materialize` emulation of
      the pre-PayloadRef simulator: every payload builder joins to
      ``bytes`` and every scatter re-casts, with the copies performed
      (and counted) for real.

    Simulated time is identical in both modes (the model charges the
    same costs); only the host's Python work differs.  ``HOST_COPIES``
    counting is deterministic, so CI pins a per-byte budget on the
    zero-copy numbers, while the MB/s ratio shows the wall-clock win.
    """
    from ..cluster.node import node_pair
    from .netpipe import ping_pong, prepare_pair
    from .transports import GmKernelTransport, MxTransport

    sizes = [4 * KiB, 64 * KiB] if quick else [4 * KiB, 32 * KiB, 256 * KiB, MiB]
    rounds = 3 if quick else 10
    # Timing is noisy on shared machines; interleave the two modes
    # rep-by-rep (so drift hits both equally) and take the min over the
    # repetitions (the timeit estimator).  CPU time is the stable
    # measure for a pure-compute simulator; wall time is reported too.
    # Copy counts are deterministic and identical across reps.
    reps = 1 if quick else 5

    def gm_kernel_physical(env):
        a, b = node_pair(env)
        return (GmKernelTransport(a, 2, 1, 2, addressing="physical"),
                GmKernelTransport(b, 2, 0, 2, addressing="physical"))

    def mx_kernel(env):
        a, b = node_pair(env)
        return (MxTransport(a, 2, 1, 2, context="kernel"),
                MxTransport(b, 2, 0, 2, context="kernel"))

    def mx_kernel_zero_copy(env):
        a, b = node_pair(env)
        kw = dict(context="kernel", physical=True,
                  no_send_copy=True, no_recv_copy=True)
        return (MxTransport(a, 2, 1, 2, **kw),
                MxTransport(b, 2, 0, 2, **kw))

    paths = {
        "gm_kernel_physical": gm_kernel_physical,
        "mx_kernel": mx_kernel,
        "mx_kernel_zero_copy": mx_kernel_zero_copy,
    }
    modes = ("zero_copy", "legacy")
    report: dict = {"sizes": sizes, "rounds": rounds, "paths": {}}
    try:
        for name, build in paths.items():
            per_mode: dict = {m: [] for m in modes}
            for size in sizes:
                payload_bytes = 2 * size * rounds  # both directions
                wall = {m: None for m in modes}
                cpu_s = {m: None for m in modes}
                snap = {}
                result = {}
                for _ in range(reps):
                    for mode in modes:
                        sglist.set_materialize(mode == "legacy")
                        env = Environment()
                        a, b = build(env)
                        prepare_pair(env, a, b, size)
                        sglist.HOST_COPIES.reset()
                        w0 = time.perf_counter()
                        c0 = time.process_time()
                        result[mode] = ping_pong(env, a, b, size,
                                                 rounds=rounds, warmup=0)
                        rep_cpu = time.process_time() - c0
                        rep_wall = time.perf_counter() - w0
                        snap[mode] = sglist.HOST_COPIES.snapshot()
                        if wall[mode] is None or rep_wall < wall[mode]:
                            wall[mode] = rep_wall
                        if cpu_s[mode] is None or rep_cpu < cpu_s[mode]:
                            cpu_s[mode] = rep_cpu
                sglist.set_materialize(False)
                for mode in modes:
                    per_mode[mode].append({
                        "mode": mode,
                        "size": size,
                        "host_copies": snap[mode]["copies"],
                        "host_copy_bytes": snap[mode]["nbytes"],
                        "copy_per_byte": snap[mode]["nbytes"] / payload_bytes,
                        "wall_s": wall[mode],
                        "cpu_s": cpu_s[mode],
                        "mb_per_s": payload_bytes / wall[mode] / 1e6,
                        # Simulated time must not depend on the host mode.
                        "one_way_us": result[mode].one_way_us,
                    })
            entries = per_mode["zero_copy"] + per_mode["legacy"]
            report["paths"][name] = {
                "entries": entries,
                "summary": _data_path_summary(entries),
            }
    finally:
        sglist.set_materialize(False)
        sglist.HOST_COPIES.reset()
    return report


def bench_packet_train(quick: bool = False) -> dict:
    """Event-count A/B of the packet-train analytic wire fast path.

    Runs the same large-transfer ping-pong with coalescing forced off
    (``per_packet``) and on (``train``).  The event counts come from
    ``Environment.events_processed`` and are fully deterministic, so CI
    gates on them directly: the reduction factor proves the fast path
    engages, the events-per-MB budget catches per-packet work creeping
    back into the data path.  Simulated time must be identical in both
    modes — the trains are an optimization, not a model change.
    """
    from ..cluster.node import node_pair
    from ..hw import train
    from .netpipe import ping_pong, prepare_pair
    from .transports import GmKernelTransport

    sizes = [256 * KiB] if quick else [256 * KiB, MiB]
    rounds = 2 if quick else 5
    reps = 1 if quick else 3
    modes = ("per_packet", "train")
    entries: list[dict] = []
    try:
        for size in sizes:
            payload_mb = 2 * size * rounds / MiB  # both directions
            events = {}
            wall = {m: None for m in modes}
            cpu_s = {m: None for m in modes}
            result = {}
            for _ in range(reps):
                for mode in modes:
                    train.set_coalescing(mode == "train")
                    env = Environment()
                    a, b = node_pair(env)
                    ta = GmKernelTransport(a, 2, 1, 2, addressing="physical")
                    tb = GmKernelTransport(b, 2, 0, 2, addressing="physical")
                    prepare_pair(env, ta, tb, size)
                    base = env.events_processed
                    w0 = time.perf_counter()
                    c0 = time.process_time()
                    result[mode] = ping_pong(env, ta, tb, size,
                                             rounds=rounds, warmup=0)
                    rep_cpu = time.process_time() - c0
                    rep_wall = time.perf_counter() - w0
                    # Deterministic: identical on every repetition.
                    events[mode] = env.events_processed - base
                    if wall[mode] is None or rep_wall < wall[mode]:
                        wall[mode] = rep_wall
                    if cpu_s[mode] is None or rep_cpu < cpu_s[mode]:
                        cpu_s[mode] = rep_cpu
            entries.append({
                "size": size,
                "rounds": rounds,
                "events": dict(events),
                "event_reduction": events["per_packet"] / events["train"],
                "events_per_mb": {m: events[m] / payload_mb for m in modes},
                "wall_s": dict(wall),
                "cpu_s": dict(cpu_s),
                "one_way_us": result["train"].one_way_us,
                "sim_time_identical": (result["per_packet"].one_way_us
                                       == result["train"].one_way_us),
            })
    finally:
        train.set_coalescing(True)
    return {
        "sizes": sizes,
        "rounds": rounds,
        "entries": entries,
        "summary": {
            "event_reduction_min": min(e["event_reduction"] for e in entries),
            "events_per_mb_train_max": max(e["events_per_mb"]["train"]
                                           for e in entries),
            "sim_time_identical": all(e["sim_time_identical"]
                                      for e in entries),
        },
    }


def _data_path_summary(entries: list[dict]) -> dict:
    """Per-path digest: byte-copy reduction and large-transfer speedup."""
    zc = [e for e in entries if e["mode"] == "zero_copy"]
    legacy = [e for e in entries if e["mode"] == "legacy"]
    zc_bytes = sum(e["host_copy_bytes"] for e in zc)
    legacy_bytes = sum(e["host_copy_bytes"] for e in legacy)
    zc_large = [e for e in zc if e["size"] >= _LARGE_CUTOFF]
    legacy_large = [e for e in legacy if e["size"] >= _LARGE_CUTOFF]
    speedup = None
    if zc_large and legacy_large:
        # Min-of-reps CPU time: the host work the simulator actually
        # saves; wall-clock rates are reported per entry as mb_per_s.
        zc_rate = (sum(2 * e["size"] for e in zc_large)
                   / sum(e["cpu_s"] for e in zc_large))
        legacy_rate = (sum(2 * e["size"] for e in legacy_large)
                       / sum(e["cpu_s"] for e in legacy_large))
        speedup = zc_rate / legacy_rate
    return {
        "zero_copy_bytes": zc_bytes,
        "legacy_bytes": legacy_bytes,
        "copy_reduction": (legacy_bytes / zc_bytes) if zc_bytes else None,
        "max_copy_per_byte": max(e["copy_per_byte"] for e in zc),
        "large_transfer_speedup": speedup,
        "sim_time_identical": all(
            a["one_way_us"] == b["one_way_us"]
            for a, b in zip(zc, legacy)
        ),
    }


# ---------------------------------------------------------------------------
# sharded engine
# ---------------------------------------------------------------------------


def bench_sharded(quick: bool = False) -> dict:
    """Wall-clock and determinism A/B of the sharded engine.

    Runs the duplex-stream workload (both nodes transmitting
    simultaneously, so both shards have real work at the same simulated
    time) sequentially and as a 2-shard fork, and checks the results
    agree exactly: same final clock, same per-node completion times,
    same total event count.  That identity check is the CI gate on
    every host; the speedup is additionally gated (>= 1.3x) only where
    ``os.cpu_count() >= 2`` — on a single core the fork can only lose.
    """
    from ..sim.shard import run_sequential, run_sharded
    from .shard import DuplexStreamScenario

    scenario = (DuplexStreamScenario(count=8, pairs=2) if quick
                else DuplexStreamScenario(count=128, pairs=16))
    reps = 1 if quick else 2
    wall = {"sequential": None, "sharded": None}
    res = {}
    for _ in range(reps):
        for mode, run in (("sequential", run_sequential),
                          ("sharded", run_sharded)):
            t0 = time.perf_counter()
            res[mode] = run(scenario)
            elapsed = time.perf_counter() - t0
            if wall[mode] is None or elapsed < wall[mode]:
                wall[mode] = elapsed
    seq, shard = res["sequential"], res["sharded"]
    seq_payload = seq.payloads[0]          # {sid: result} pseudo-shard
    identical = (
        shard.now == seq.now
        and shard.events_processed == seq.events_processed
        and all(shard.payloads[sid] == seq_payload[sid]
                for sid in range(scenario.nshards))
    )
    cores = os.cpu_count() or 1
    return {
        "workload": {"size": scenario.size, "count": scenario.count,
                     "pairs": scenario.pairs, "nshards": scenario.nshards,
                     "lookahead_ns": scenario.link.propagation_ns},
        "cores": cores,
        "wall_s": dict(wall),
        "speedup": wall["sequential"] / wall["sharded"],
        "events": seq.events_processed,
        "events_per_shard": shard.events_per_shard,
        "events_per_sec": {
            "sequential": seq.events_processed / wall["sequential"],
            "sharded": shard.events_processed / wall["sharded"],
        },
        "sim_now_ns": shard.now,
        "sim_identical": identical,
    }


# ---------------------------------------------------------------------------
# fabric / hybrid fidelity
# ---------------------------------------------------------------------------


def _bench_topo(quick: bool = False) -> dict:
    """``topo`` section: fat-tree flow-fidelity A/B (repro.bench.topo).

    Deterministic event counts again, so CI gates directly: >= 10x
    fewer engine events on the congested cross-pod permutation, and
    byte-identical completion tables plus metric snapshots on the
    uncontended same-edge exchange (the regime where the analytic flow
    model is exact).
    """
    from .topo import bench_topo

    return bench_topo(quick=quick)


def _bench_topo_sharded(quick: bool = False) -> dict:
    """``topo_sharded`` section: pod-sharded fabric run vs sequential.

    The congested permutation again, but split across two worker
    processes along the pod boundary (``Fabric.propose_pods``), with
    core-layer trunks as border links.  The gate is the identity check:
    per-shard completion tables, the global clock and the total event
    count must match the in-process sequential reference exactly (the
    ranked border-commit order makes all three deterministic).  The
    speedup is informational only — two pods of a small fabric don't
    amortise fork cost.
    """
    from .topo import run_topo_sharded

    k = 4 if quick else 8
    size = 64 * KiB if quick else 256 * KiB
    res = run_topo_sharded(k, size, nshards=2, verify=True)
    res.pop("completions", None)  # bulky; identity already checked
    res["cores"] = os.cpu_count() or 1
    return res


def _bench_topo_full(quick: bool = False) -> dict:
    """``topo_full`` section: the 1024-host interactive-scale run.

    k=16 (1024 hosts, 1280 switches) congested cross-pod permutation in
    flow mode — the workload the incremental component-local water-fill
    exists for.  Skipped in ``--quick`` (schema stays stable; the
    section records ``skipped: true``) because even at ~6 s it dwarfs
    the CI smoke budget.
    """
    if quick:
        return {"skipped": True}
    from .topo import run_topo

    res = run_topo(16, "congested", "flow")
    return {
        "skipped": False,
        "k": res["k"],
        "hosts": res["hosts"],
        "size": res["size"],
        "now_ns": res["now"],
        "events": res["events"],
        "events_per_mib": round(res["events_per_mib"], 1),
        "wall_s": res["wall_s"],
        "flow_stats": res["flow_stats"],
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run_perf(quick: bool = False) -> dict:
    """Run all self-benchmarks; returns the report dict."""
    scale = 10 if quick else 1
    report = {
        "schema": "repro-perf/1",
        "quick": quick,
        "engine": {
            "heap": bench_engine_heap(timeouts=20_000 // scale),
            "immediate": bench_engine_immediate(rounds=10_000 // scale),
        },
        "allocator": {
            "single_frame": bench_alloc_single(cycles=20 // scale or 1),
            "contiguous": bench_alloc_contiguous(cycles=200 // scale),
        },
        "data_path": bench_data_path(quick=quick),
        "packet_train": bench_packet_train(quick=quick),
        "sharded": bench_sharded(quick=quick),
        "topo": _bench_topo(quick=quick),
        "topo_sharded": _bench_topo_sharded(quick=quick),
        "topo_full": _bench_topo_full(quick=quick),
    }
    eng = report["engine"]
    alloc = report["allocator"]
    dp = report["data_path"]["paths"]
    pt = report["packet_train"]["summary"]
    sh = report["sharded"]
    tp = report["topo"]["summary"]
    report["summary"] = {
        "engine_events_per_sec": round(
            (eng["heap"]["events"] + eng["immediate"]["events"])
            / (eng["heap"]["elapsed_s"] + eng["immediate"]["elapsed_s"])),
        "allocator_ops_per_sec": round(
            (alloc["single_frame"]["ops"] + alloc["contiguous"]["ops"])
            / (alloc["single_frame"]["elapsed_s"]
               + alloc["contiguous"]["elapsed_s"])),
        "data_path_copy_reduction_min": min(
            p["summary"]["copy_reduction"] for p in dp.values()),
        "data_path_copy_per_byte_max": max(
            p["summary"]["max_copy_per_byte"] for p in dp.values()),
        "data_path_large_speedup_min": min(
            p["summary"]["large_transfer_speedup"] for p in dp.values()),
        "packet_train_event_reduction": pt["event_reduction_min"],
        "packet_train_events_per_mb": pt["events_per_mb_train_max"],
        "packet_train_sim_identical": pt["sim_time_identical"],
        "sharded_sim_identical": sh["sim_identical"],
        "sharded_speedup": sh["speedup"],
        "sharded_cores": sh["cores"],
        "topo_event_reduction": tp["event_reduction"],
        "topo_events_per_mib_flow": tp["events_per_mib_flow"],
        "topo_identity_identical": (tp["identity_completions_identical"]
                                    and tp["identity_obs_identical"]),
        "topo_waterfill_reduction": tp["waterfill_reduction"],
        "topo_sharded_identical": report["topo_sharded"]["identical"],
        "topo_sharded_speedup": report["topo_sharded"]["speedup"],
        "topo_full_wall_s": (None if report["topo_full"]["skipped"]
                             else report["topo_full"]["wall_s"]),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-perf",
        description="Self-benchmark the event engine and frame allocator",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke, ~1 s)")
    parser.add_argument("--out", default="BENCH_engine.json", metavar="PATH",
                        help="where to write the JSON report "
                             "(default: BENCH_engine.json; '-' for stdout only)")
    args = parser.parse_args(argv)
    report = run_perf(quick=args.quick)
    text = json.dumps(report, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    summary = report["summary"]
    for line in (
        f"engine heap      : {report['engine']['heap']['events_per_sec']:>12,.0f} events/s",
        f"engine immediate : {report['engine']['immediate']['events_per_sec']:>12,.0f} events/s",
        f"alloc single     : {report['allocator']['single_frame']['ops_per_sec']:>12,.0f} ops/s",
        f"alloc contiguous : {report['allocator']['contiguous']['ops_per_sec']:>12,.0f} ops/s",
        f"data-path copies : {summary['data_path_copy_reduction_min']:>12.2f} x fewer host bytes copied",
        f"data-path speedup: {summary['data_path_large_speedup_min']:>12.2f} x MB/s on >=32 kB transfers",
        f"packet trains    : {summary['packet_train_event_reduction']:>12.2f} x fewer engine events "
        f"({summary['packet_train_events_per_mb']:,.0f} events/MB)",
        f"sharded (2 procs): {summary['sharded_speedup']:>12.2f} x vs sequential on "
        f"{summary['sharded_cores']} core(s), "
        f"identical={summary['sharded_sim_identical']}",
        f"fabric flows     : {summary['topo_event_reduction']:>12.2f} x fewer engine events "
        f"({summary['topo_events_per_mib_flow']:,.0f} events/MiB), "
        f"identity={summary['topo_identity_identical']}",
        f"fabric waterfill : {summary['topo_waterfill_reduction']:>12.2f} x fewer flows re-divided "
        f"(component-local vs global)",
        f"fabric sharded   : identical={summary['topo_sharded_identical']}, "
        f"{summary['topo_sharded_speedup']:.2f} x vs sequential"
        + (f"; 1024-host full run {summary['topo_full_wall_s']:.1f} s"
           if summary['topo_full_wall_s'] is not None else ""),
    ):
        print(line, file=sys.stderr if args.out == "-" else sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
