"""Engine/allocator self-benchmarks: track the simulator's own speed.

The paper's argument is that per-operation bookkeeping must come off the
data path; for this reproduction the "data path" is the discrete-event
engine and the physical frame allocator that every figure driver and
test exercises.  This module measures both in isolation —

* **engine**: events processed per second, split into the heap path
  (delayed timeouts) and the immediate path (delay-0 resource grants /
  Store hand-offs), via a timeout-chain workload and a Store ping-pong
  workload;
* **allocator**: single-frame alloc/free cycles per second and
  contiguous (kmalloc-style) allocations per second over a fragmented
  pool,

and writes the numbers to ``BENCH_engine.json`` so the performance
trajectory is visible across PRs.

Usage::

    python -m repro.bench.perf                 # full run, writes BENCH_engine.json
    python -m repro.bench.perf --quick         # CI smoke (~1 s)
    python -m repro.bench.perf --out path.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..mem.phys import PhysicalMemory
from ..sim import Environment
from ..sim.resources import Store


# ---------------------------------------------------------------------------
# engine benchmarks
# ---------------------------------------------------------------------------


def bench_engine_heap(procs: int = 10, timeouts: int = 20_000) -> dict:
    """Events/sec through the heap: ``procs`` chains of delayed timeouts."""
    env = Environment()

    def chain(env, delay):
        for _ in range(timeouts):
            yield env.timeout(delay)

    for i in range(procs):
        env.process(chain(env, i + 1))
    # per process: 1 start + `timeouts` timeout events + 1 completion
    events = procs * (timeouts + 2)
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    return {"events": events, "elapsed_s": elapsed,
            "events_per_sec": events / elapsed}


def bench_engine_immediate(pairs: int = 10, rounds: int = 10_000) -> dict:
    """Events/sec through the immediate queue: Store ping-pong pairs."""
    env = Environment()

    def pinger(env, tx, rx):
        for _ in range(rounds):
            tx.put(1)
            yield rx.get()

    def ponger(env, tx, rx):
        for _ in range(rounds):
            yield rx.get()
            tx.put(1)

    for _ in range(pairs):
        a2b = Store(env, "a2b")
        b2a = Store(env, "b2a")
        env.process(pinger(env, a2b, b2a))
        env.process(ponger(env, b2a, a2b))
    # per pair per round: 2 get events (puts complete them inline);
    # plus 2 starts and 2 completions per pair
    events = pairs * (2 * rounds + 4)
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    return {"events": events, "elapsed_s": elapsed,
            "events_per_sec": events / elapsed}


# ---------------------------------------------------------------------------
# allocator benchmarks
# ---------------------------------------------------------------------------


def bench_alloc_single(frames: int = 4096, cycles: int = 20) -> dict:
    """Single-frame ops/sec: fill the pool, drain it, repeat."""
    phys = PhysicalMemory(frames)
    ops = 0
    t0 = time.perf_counter()
    for _ in range(cycles):
        allocated = [phys.alloc() for _ in range(frames)]
        for frame in allocated:
            phys.free(frame)
        ops += 2 * frames
    elapsed = time.perf_counter() - t0
    return {"ops": ops, "elapsed_s": elapsed, "ops_per_sec": ops / elapsed}


def bench_alloc_contiguous(frames: int = 4096, run_len: int = 8,
                           cycles: int = 200) -> dict:
    """Contiguous ops/sec over a fragmented pool (worst case for kmalloc).

    Fragments the pool by pinning every 16th frame, then repeatedly
    allocates and frees ``run_len``-frame runs from the holes between.
    """
    phys = PhysicalMemory(frames)
    step = 16
    holders = [phys.alloc() for _ in range(frames)]
    kept_pfns = {frame.pfn for frame in holders[::step]}
    for frame in holders:
        if frame.pfn not in kept_pfns:
            phys.free(frame)
    # free pool is now many short runs of (step-1) frames between pins
    ops = 0
    t0 = time.perf_counter()
    for _ in range(cycles):
        taken = [phys.alloc_contiguous(run_len)
                 for _ in range(frames // step // 2)]
        for run in taken:
            for frame in run:
                phys.free(frame)
        ops += 2 * len(taken)
    elapsed = time.perf_counter() - t0
    return {"ops": ops, "elapsed_s": elapsed, "ops_per_sec": ops / elapsed,
            "run_len": run_len, "free_runs": len(phys.free_runs())}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run_perf(quick: bool = False) -> dict:
    """Run all self-benchmarks; returns the report dict."""
    scale = 10 if quick else 1
    report = {
        "schema": "repro-perf/1",
        "quick": quick,
        "engine": {
            "heap": bench_engine_heap(timeouts=20_000 // scale),
            "immediate": bench_engine_immediate(rounds=10_000 // scale),
        },
        "allocator": {
            "single_frame": bench_alloc_single(cycles=20 // scale or 1),
            "contiguous": bench_alloc_contiguous(cycles=200 // scale),
        },
    }
    eng = report["engine"]
    alloc = report["allocator"]
    report["summary"] = {
        "engine_events_per_sec": round(
            (eng["heap"]["events"] + eng["immediate"]["events"])
            / (eng["heap"]["elapsed_s"] + eng["immediate"]["elapsed_s"])),
        "allocator_ops_per_sec": round(
            (alloc["single_frame"]["ops"] + alloc["contiguous"]["ops"])
            / (alloc["single_frame"]["elapsed_s"]
               + alloc["contiguous"]["elapsed_s"])),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-perf",
        description="Self-benchmark the event engine and frame allocator",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke, ~1 s)")
    parser.add_argument("--out", default="BENCH_engine.json", metavar="PATH",
                        help="where to write the JSON report "
                             "(default: BENCH_engine.json; '-' for stdout only)")
    args = parser.parse_args(argv)
    report = run_perf(quick=args.quick)
    text = json.dumps(report, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    for line in (
        f"engine heap      : {report['engine']['heap']['events_per_sec']:>12,.0f} events/s",
        f"engine immediate : {report['engine']['immediate']['events_per_sec']:>12,.0f} events/s",
        f"alloc single     : {report['allocator']['single_frame']['ops_per_sec']:>12,.0f} ops/s",
        f"alloc contiguous : {report['allocator']['contiguous']['ops_per_sec']:>12,.0f} ops/s",
    ):
        print(line, file=sys.stderr if args.out == "-" else sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
