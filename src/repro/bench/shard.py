"""Sharded figure drivers: 2-shard netpipe experiments over cut wires.

``python -m repro.bench shard`` regenerates the subset of the paper's
figures whose topology is the two-node platform — each node becomes one
shard, the back-to-back ``wire`` becomes the border, and its 500 ns
propagation delay is the conservative lookahead of the null-token
protocol.  Output is byte-identical to the sequential drivers in
:mod:`repro.bench.figures` (``--verify`` proves it in-process; the CI
``shard-smoke`` job diffs against ``bench_figures.txt``).

The module also defines the scenario classes shared by the tests and
the ``repro.bench.perf`` ``sharded`` section.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Optional

from ..cluster.node import Node
from ..hw.params import HostParams, LinkParams, NicParams, PCI_XD
from ..sim.engine import Environment
from ..sim.shard import ShardResult, run_sequential, run_sharded
from ..units import KiB, MiB, PAGE_SIZE
from .figures import FIGURES, FigureData
from .netpipe import PingPongResult
from .transports import GmKernelTransport, GmUserTransport, MxTransport


def _make_transport(kind: str, node: Node, peer: int):
    if kind == "gm_user":
        return GmUserTransport(node, 1, peer_node=peer, peer_port=1)
    if kind == "gm_kernel_virtual":
        return GmKernelTransport(node, 1, peer_node=peer, peer_port=1,
                                 addressing="virtual")
    if kind == "gm_kernel_physical":
        return GmKernelTransport(node, 1, peer_node=peer, peer_port=1,
                                 addressing="physical")
    if kind.startswith("mx_"):
        _, context, *flags = kind.split("_")
        return MxTransport(node, 1, peer_node=peer, peer_ep=1,
                           context=context,
                           physical="physical" in flags,
                           no_send_copy="nosendcopy" in flags,
                           no_recv_copy="norecvcopy" in flags)
    raise KeyError(f"unknown transport kind {kind!r}")


@dataclass
class NetpipeShardScenario:
    """One ``_netpipe_series`` sweep with each node in its own shard.

    Shard 0 holds nodeA and runs the initiator, shard 1 holds nodeB and
    runs the responder; phase 0 prepares both transports (the phase
    barrier reproduces ``prepare_pair``'s all-of join), phase 1 runs the
    ping-pong sweep.  The client shard's payload is the series of
    figure values.
    """

    transport: str
    sizes: tuple
    metric: str
    rounds: int = 8
    warmup: int = 2
    link: LinkParams = PCI_XD
    observe: bool = False

    nshards = 2
    nphases = 2

    def borders(self):
        return [("wire", 0, 1)]

    def build(self, shard_id: int, env: Environment, hub):
        params = HostParams(nic=NicParams(link=self.link))
        end = "a" if shard_id == 0 else "b"
        node = Node(env, shard_id, params,
                    name="nodeA" if shard_id == 0 else "nodeB")
        wire = hub.border_link("wire", self.link, local_end=end)
        node.nic.attach_link(wire, end)
        transport = _make_transport(self.transport, node, peer=1 - shard_id)
        return {"node": node, "transport": transport, "series": []}

    def phase(self, shard_id: int, k: int, env: Environment, ctx):
        t = ctx["transport"]
        if k == 0:
            return [t.prepare(max(max(self.sizes), PAGE_SIZE))]
        if shard_id == 0:
            return [self._client(env, ctx)]
        return [self._responder(env, ctx)]

    def _client(self, env: Environment, ctx):
        t = ctx["transport"]
        for size in self.sizes:
            t0 = 0
            for i in range(self.warmup + self.rounds):
                if i == self.warmup:
                    t0 = env.now
                yield from t.send(size, match=i)
                yield from t.recv(size)
            r = PingPongResult(size=size, rounds=self.rounds,
                               one_way_ns=(env.now - t0) / (2 * self.rounds))
            ctx["series"].append(r.one_way_us if self.metric == "latency_us"
                                 else r.bandwidth_mb_s)

    def _responder(self, env: Environment, ctx):
        t = ctx["transport"]
        for size in self.sizes:
            for i in range(self.warmup + self.rounds):
                yield from t.recv(size)
                yield from t.send(size, match=i)

    def result(self, shard_id: int, env: Environment, ctx):
        return {"series": ctx["series"], "now": env.now}


#: Perf wire: a rack-scale latency (50 us) rather than the back-to-back
#: 500 ns of PCI_XD.  Lookahead IS the propagation delay, so a longer
#: wire means fewer, fatter sync windows — exactly the topologies the
#: sharded engine targets.
RACK_WIRE = LinkParams(
    name="rack-wire",
    link_bandwidth=PCI_XD.link_bandwidth,
    pci_bandwidth=PCI_XD.pci_bandwidth,
    propagation_ns=50_000,
    cut_through_lag_ns=PCI_XD.cut_through_lag_ns,
)


@dataclass
class DuplexStreamScenario:
    """``pairs`` node pairs all streaming full-duplex (perf workload).

    Unlike the request/response figures, both shards are busy at the
    same simulated time, so a 2-shard run can genuinely use two cores.
    Pair ``p`` puts node ``2p`` in shard 0 and node ``2p+1`` in shard 1,
    joined by its own border wire; each side alternates send/recv over
    ``count`` messages of ``size`` bytes.  More pairs pack more events
    into every lookahead window, amortising the per-window token
    exchange.  The payload records per-pair completion times so the
    perf harness can assert sharded == sequential.
    """

    size: int = 64 * KiB
    count: int = 32
    pairs: int = 4
    link: LinkParams = RACK_WIRE
    observe: bool = False

    nshards = 2
    nphases = 2

    def borders(self):
        return [(f"wire{p}", 0, 1) for p in range(self.pairs)]

    def build(self, shard_id: int, env: Environment, hub):
        end = "a" if shard_id == 0 else "b"
        transports = []
        for p in range(self.pairs):
            params = HostParams(nic=NicParams(link=self.link))
            node_id = 2 * p + shard_id
            node = Node(env, node_id, params, name=f"node{node_id}")
            wire = hub.border_link(f"wire{p}", self.link, local_end=end)
            node.nic.attach_link(wire, end)
            transports.append(
                _make_transport("gm_user", node, peer=2 * p + 1 - shard_id))
        return {"transports": transports, "done_at": [0] * self.pairs}

    def phase(self, shard_id: int, k: int, env: Environment, ctx):
        if k == 0:
            return [t.prepare(max(self.size, PAGE_SIZE))
                    for t in ctx["transports"]]
        return [self._stream(env, ctx, p) for p in range(self.pairs)]

    def _stream(self, env: Environment, ctx, p: int):
        t = ctx["transports"][p]
        for i in range(self.count):
            yield from t.send(self.size, match=i)
            yield from t.recv(self.size)
        ctx["done_at"][p] = env.now

    def result(self, shard_id: int, env: Environment, ctx):
        return {"done_at": list(ctx["done_at"]), "now": env.now}


# ---------------------------------------------------------------------------
# sharded figure drivers (must mirror repro.bench.figures exactly)
# ---------------------------------------------------------------------------


def _series(transport: str, sizes, metric: str) -> list[float]:
    scenario = NetpipeShardScenario(transport=transport, sizes=tuple(sizes),
                                    metric=metric)
    result = run_sharded(scenario)
    return result.payloads[0]["series"]


def shard_fig4a(sizes=(16, 64, 256, 1024, 4096)) -> FigureData:
    sizes = list(sizes)
    return FigureData(
        name="fig4a",
        title="GM kernel latency: registered virtual vs physical address",
        xlabel="size",
        unit="us",
        xs=sizes,
        series={
            "Memory Registration": _series("gm_kernel_virtual", sizes,
                                           "latency_us"),
            "Physical Address": _series("gm_kernel_physical", sizes,
                                        "latency_us"),
        },
    )


def shard_fig5a(sizes=(1, 16, 256, 1024, 4096)) -> FigureData:
    sizes = list(sizes)
    return FigureData(
        name="fig5a",
        title="small-message latency: GM vs MX, user vs kernel",
        xlabel="size",
        unit="us",
        xs=sizes,
        series={
            "GM User": _series("gm_user", sizes, "latency_us"),
            "GM Kernel": _series("gm_kernel_virtual", sizes, "latency_us"),
            "MX User": _series("mx_user", sizes, "latency_us"),
            "MX Kernel": _series("mx_kernel", sizes, "latency_us"),
        },
    )


def shard_fig5b(sizes=(1024, 4096, 16 * KiB, 64 * KiB, 256 * KiB,
                       MiB)) -> FigureData:
    sizes = list(sizes)
    return FigureData(
        name="fig5b",
        title="bandwidth: GM vs MX user vs MX kernel (physical)",
        xlabel="size",
        unit="MB/s",
        xs=sizes,
        series={
            "GM": _series("gm_user", sizes, "bandwidth"),
            "MX User": _series("mx_user", sizes, "bandwidth"),
            "MX Kernel Physical": _series("mx_kernel_physical", sizes,
                                          "bandwidth"),
        },
    )


def shard_fig6(sizes=(1024, 4096, 16 * KiB, 32 * KiB, 64 * KiB,
                      256 * KiB)) -> FigureData:
    sizes = list(sizes)
    return FigureData(
        name="fig6",
        title="impact of removing the medium-message copies (MX)",
        xlabel="size",
        unit="MB/s",
        xs=sizes,
        series={
            "MX User": _series("mx_user", sizes, "bandwidth"),
            "MX Kernel": _series("mx_kernel_physical", sizes, "bandwidth"),
            "MX Kernel No-send-copy": _series(
                "mx_kernel_physical_nosendcopy", sizes, "bandwidth"),
            "MX Kernel No-copy (predicted)": _series(
                "mx_kernel_physical_nosendcopy_norecvcopy", sizes,
                "bandwidth"),
        },
    )


#: Figures whose topology is the plain two-node pair and can therefore
#: be sharded one-node-per-worker.  The ORFA/ORFS and sockets figures
#: drive client/server rigs through shared in-process state and stay
#: sequential-only.
SHARD_FIGURES = {
    "fig4a": shard_fig4a,
    "fig5a": shard_fig5a,
    "fig5b": shard_fig5b,
    "fig6": shard_fig6,
}


def run_shard_figure(name: str) -> str:
    try:
        fn = SHARD_FIGURES[name]
    except KeyError:
        raise KeyError(
            f"figure {name!r} is not shardable; choose from "
            f"{sorted(SHARD_FIGURES)}") from None
    return fn().render()


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench shard",
        description="Regenerate two-node figures with one worker process "
                    "per node (conservative link-lookahead sync)",
    )
    parser.add_argument("figures", nargs="*",
                        help=f"figure names ({', '.join(sorted(SHARD_FIGURES))}); "
                             "default: all of them")
    parser.add_argument("--list", action="store_true",
                        help="list shardable figures")
    parser.add_argument("--verify", action="store_true",
                        help="also run each figure sequentially in-process "
                             "and fail unless output is byte-identical")
    parser.add_argument("--timings", action="store_true",
                        help="report per-figure wall-clock on stderr")
    args = parser.parse_args(argv)
    if args.list:
        print("\n".join(sorted(SHARD_FIGURES)))
        return 0
    names = args.figures or sorted(SHARD_FIGURES)
    for name in names:
        if name not in SHARD_FIGURES:
            print(f"unknown/unshardable figure {name!r}", file=sys.stderr)
            return 2
    status = 0
    timings = []
    for name in names:
        t0 = time.perf_counter()
        ev0 = Environment.lifetime_events_processed
        text = run_shard_figure(name)
        timings.append((name, time.perf_counter() - t0,
                        Environment.lifetime_events_processed - ev0))
        print(text)
        print()
        if args.verify:
            sequential = FIGURES[name]().render()
            if sequential != text:
                print(f"[verify] {name}: sharded output DIVERGES from "
                      "sequential", file=sys.stderr)
                status = 1
            else:
                print(f"[verify] {name}: byte-identical to sequential",
                      file=sys.stderr)
    if args.timings:
        for name, secs, events in timings:
            print(f"[timing] {name:8s} {secs:7.3f} s  "
                  f"{events:>10d} events", file=sys.stderr)
    return status


__all__ = [
    "DuplexStreamScenario",
    "NetpipeShardScenario",
    "SHARD_FIGURES",
    "main",
    "run_shard_figure",
    "run_sequential",
    "run_sharded",
    "ShardResult",
]
