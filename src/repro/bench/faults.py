"""``python -m repro.bench faults`` — latency degradation under loss.

Runs an ORFA read/write workload and an NBD block workload against the
same two-node platform while a seeded :class:`repro.faults.FaultPlan`
drops a growing fraction of wire messages.  The NIC's reliable-delivery
sublayer recovers every loss, so the workloads always complete with
correct data — what degrades is *time*, and that degradation is the
figure of merit.

This driver is intentionally not part of ``bench all``: the fault runs
add nothing to the paper's tables, and keeping them out guarantees the
zero-fault figure output stays byte-identical to ``bench_figures.txt``.
Everything here is deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse

from ..cluster.node import node_pair
from ..core.channel import MxKernelChannel
from ..faults import FaultPlan
from ..nbd.device import BLOCK_SIZE, NbdDevice, NbdServer
from ..orfa.client import OrfaClient
from ..orfa.server import OrfaServer
from ..sim import Environment
from ..units import ms

DROP_RATES = (0.0, 0.01, 0.02, 0.05, 0.10)

_ORFA_CHUNK = 4096
_ORFA_BYTES = 16 * _ORFA_CHUNK
_NBD_BLOCKS = 16

#: RPC budgets for the fault runs (generous relative to the NIC's RTO,
#: so NIC-level retransmission does almost all of the recovery work).
_RPC_TIMEOUT_NS = ms(2)
_RPC_RETRIES = 6


def _install(env, nodes, seed: float, drop: float) -> FaultPlan:
    plan = FaultPlan(seed=seed)
    if drop:
        plan.drop("*", drop)
    plan.install(env, nodes=nodes)
    return plan


def _fault_counters(plan: FaultPlan, *nics) -> tuple[int, int]:
    stats = plan.stats()
    retrans = sum(nic.retransmissions for nic in nics)
    return stats["dropped"], retrans


def _orfa_run(seed: int, drop: float) -> tuple[float, int, int]:
    """One ORFA write+read pass; returns (sim ms, drops, retransmissions)."""
    env = Environment()
    client_node, server_node = node_pair(env)
    plan = _install(env, [client_node, server_node], seed, drop)
    server = OrfaServer(server_node, 3, api="mx", tolerant=True)
    env.run(until=server.start())
    space = client_node.new_process_space()
    client = OrfaClient(client_node, 4, space, (server_node.node_id, 3),
                        api="mx", timeout_ns=_RPC_TIMEOUT_NS,
                        max_retries=_RPC_RETRIES, tracer=plan.tracer)
    env.run(until=env.process(client.setup()))
    payload = bytes((i * 37 + 11) & 0xFF for i in range(_ORFA_BYTES))
    buf = space.mmap(len(payload), populate=True)
    space.write_bytes(buf, payload)
    out = space.mmap(len(payload), populate=True)

    def script(env):
        fd = yield from client.open("/bench", create=True)
        for off in range(0, len(payload), _ORFA_CHUNK):
            client.seek(fd, off)
            yield from client.write(fd, buf + off, _ORFA_CHUNK)
        client.seek(fd, 0)
        n = yield from client.read(fd, out, len(payload))
        if n != len(payload) or space.read_bytes(out, n) != payload:
            raise AssertionError("fault run returned corrupt data")
        yield from client.close(fd)

    start = env.now
    env.run(until=env.process(script(env)))
    elapsed_ms = (env.now - start) / 1e6
    dropped, retrans = _fault_counters(plan, client_node.nic, server_node.nic)
    return elapsed_ms, dropped, retrans


def _nbd_run(seed: int, drop: float) -> tuple[float, int, int]:
    """One NBD write+flush+reread pass; returns (sim ms, drops, retrans)."""
    env = Environment()
    client_node, server_node = node_pair(env)
    plan = _install(env, [client_node, server_node], seed, drop)
    server = NbdServer(server_node, 3, api="mx", device_blocks=_NBD_BLOCKS)
    env.run(until=server.start())
    channel = MxKernelChannel(client_node, 4)
    dev = NbdDevice(client_node, channel, (server_node.node_id, 3),
                    server.device_inode, _NBD_BLOCKS,
                    timeout_ns=_RPC_TIMEOUT_NS, max_retries=_RPC_RETRIES,
                    tracer=plan.tracer)
    space = client_node.new_process_space()
    payload = bytes((i * 13 + 5) & 0xFF for i in range(_NBD_BLOCKS * BLOCK_SIZE))
    va = space.mmap(len(payload))
    space.write_bytes(va, payload)
    out = space.mmap(len(payload))

    def script(env):
        yield from dev.write(space, va, 0, len(payload))
        yield from dev.flush()
        client_node.pagecache.invalidate_inode(dev._cache_key)
        n = yield from dev.read(space, out, 0, len(payload))
        if n != len(payload) or space.read_bytes(out, n) != payload:
            raise AssertionError("fault run returned corrupt data")

    start = env.now
    env.run(until=env.process(script(env)))
    elapsed_ms = (env.now - start) / 1e6
    dropped, retrans = _fault_counters(plan, client_node.nic, server_node.nic)
    return elapsed_ms, dropped, retrans


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench faults",
        description="Latency degradation of ORFA/NBD workloads under "
                    "injected message loss (reliable delivery recovers "
                    "every drop; only time degrades)",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="fault-plan seed (default 1); the same seed "
                             "reproduces the table bit-for-bit")
    args = parser.parse_args(argv)

    print(f"Fault injection: completion time under message loss "
          f"(seed {args.seed})")
    print(f"  ORFA: {_ORFA_BYTES // 1024} KB write+read in "
          f"{_ORFA_CHUNK // 1024} KB RPCs over MX; "
          f"NBD: {_NBD_BLOCKS} blocks write+flush+reread")
    print()
    header = (f"{'drop':>6}  {'orfa ms':>9} {'drops':>6} {'rexmit':>6}  "
              f"{'nbd ms':>9} {'drops':>6} {'rexmit':>6}")
    print(header)
    print("-" * len(header))
    for drop in DROP_RATES:
        o_ms, o_drop, o_rx = _orfa_run(args.seed, drop)
        n_ms, n_drop, n_rx = _nbd_run(args.seed, drop)
        print(f"{drop * 100:5.1f}%  {o_ms:9.3f} {o_drop:6d} {o_rx:6d}  "
              f"{n_ms:9.3f} {n_drop:6d} {n_rx:6d}")
    print()
    print("every run completed with byte-correct data; loss costs time, "
          "not correctness")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
