"""File-access throughput harnesses for the ORFA/ORFS experiments.

The paper's methodology (section 3.3): "We measure the throughput at
the application level when accessing large files sequentially", varying
the application's request size.  These helpers build a client/server
pair, pre-populate a file on the server, and time sequential reads of a
given request size from the application's point of view.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import node_pair
from ..core import GmKernelChannel, MxKernelChannel
from ..hw.params import LinkParams, PCI_XD
from ..kernel import OpenFlags
from ..kernel.vfs import UserBuffer
from ..orfa.client import OrfaClient
from ..orfa.server import OrfaServer
from ..orfs import mount_orfs
from ..sim import Environment
from ..units import MiB, bandwidth_mb_s, page_align_up

SERVER_PORT = 3
CLIENT_PORT = 4

#: bytes transferred per measured point (enough requests to reach the
#: steady state at every request size)
DEFAULT_TOTAL = 2 * MiB


@dataclass
class FileAccessResult:
    """Throughput of one (access mode, request size) measurement."""

    request_size: int
    total_bytes: int
    elapsed_ns: int

    @property
    def throughput_mb_s(self) -> float:
        return bandwidth_mb_s(self.total_bytes, self.elapsed_ns)


@dataclass
class OrfsRig:
    """A built ORFS client/server pair ready for measurements."""

    env: Environment
    client_node: object
    server_node: object
    server: OrfaServer
    client: object
    channel: object


def build_orfs(api: str, link: LinkParams = PCI_XD,
               regcache_enabled: bool = True,
               file_size: int = DEFAULT_TOTAL,
               path: str = "bench") -> OrfsRig:
    """Client node + server node, ORFS mounted, one file pre-populated."""
    env = Environment()
    client_node, server_node = node_pair(env, link=link)
    server = OrfaServer(server_node, SERVER_PORT, api=api)
    env.run(until=server.start())
    if api == "mx":
        channel = MxKernelChannel(client_node, CLIENT_PORT)
    else:
        channel = GmKernelChannel(client_node, CLIENT_PORT,
                                  regcache_enabled=regcache_enabled)
    client = mount_orfs(client_node, channel, (server_node.node_id, SERVER_PORT))
    # Pre-populate server-side (free: the benchmark measures reads).
    attrs_gen = server.fs.create(1, path)
    attrs = env.run(until=env.process(attrs_gen))
    server.fs.write_raw(attrs.inode_id, 0, bytes(file_size))
    return OrfsRig(env, client_node, server_node, server, client, channel)


def orfs_sequential_read(rig: OrfsRig, request_size: int,
                         total_bytes: int = DEFAULT_TOTAL,
                         direct: bool = False,
                         path: str = "/orfs/bench") -> FileAccessResult:
    """Time sequential reads of ``request_size`` over ``total_bytes``.

    The client page cache is dropped first so every point starts cold
    (the paper's buffered curves measure cache *fill*, not re-reads).
    """
    env = rig.env
    node = rig.client_node
    # Cold start: drop cached pages of every inode.
    for inode in range(1, 64):
        node.pagecache.invalidate_inode(inode)
    flags = OpenFlags.RDONLY | (OpenFlags.DIRECT if direct else OpenFlags.RDONLY)
    result = {}

    def app(env):
        fd = yield from node.vfs.open(path, flags)
        space = node.new_process_space()
        vaddr = space.mmap(page_align_up(max(request_size, 4096)))
        done = 0
        t0 = env.now
        while done < total_bytes:
            n = yield from node.vfs.read(
                fd, UserBuffer(space, vaddr, request_size))
            if n == 0:
                node.vfs.seek(fd, 0)  # wrap: keep reading sequentially
                continue
            done += n
        result["elapsed"] = env.now - t0
        yield from node.vfs.close(fd)

    env.run(until=env.process(app(env)))
    return FileAccessResult(request_size, total_bytes, result["elapsed"])


@dataclass
class OrfaRig:
    """A built user-space ORFA client/server pair."""

    env: Environment
    client_node: object
    server: OrfaServer
    client: OrfaClient
    space: object


def build_orfa(api: str, link: LinkParams = PCI_XD,
               file_size: int = DEFAULT_TOTAL, path: str = "bench") -> OrfaRig:
    """User-space ORFA client against the same server."""
    env = Environment()
    client_node, server_node = node_pair(env, link=link)
    server = OrfaServer(server_node, SERVER_PORT, api=api)
    env.run(until=server.start())
    space = client_node.new_process_space()
    client = OrfaClient(client_node, CLIENT_PORT, space,
                        (server_node.node_id, SERVER_PORT), api=api)
    env.run(until=env.process(client.setup()))
    attrs = env.run(until=env.process(server.fs.create(1, path)))
    server.fs.write_raw(attrs.inode_id, 0, bytes(file_size))
    return OrfaRig(env, client_node, server, client, space)


def orfa_sequential_read(rig: OrfaRig, request_size: int,
                         total_bytes: int = DEFAULT_TOTAL,
                         path: str = "/bench") -> FileAccessResult:
    """Same measurement through the intercepting user-space library."""
    env = rig.env
    result = {}

    def app(env):
        fd = yield from rig.client.open(path)
        vaddr = rig.space.mmap(page_align_up(max(request_size, 4096)))
        done = 0
        t0 = env.now
        while done < total_bytes:
            n = yield from rig.client.read(fd, vaddr, request_size)
            if n == 0:
                rig.client.seek(fd, 0)
                continue
            done += n
        result["elapsed"] = env.now - t0
        yield from rig.client.close(fd)

    env.run(until=env.process(app(env)))
    return FileAccessResult(request_size, total_bytes, result["elapsed"])
