"""File-access workload generators.

Deterministic (seeded) access-pattern generators for exercising the
file-system paths beyond the paper's sequential sweeps: sequential,
strided, uniform-random, and zipf-like hot/cold — the shapes real
cluster applications (out-of-core solvers, databases; paper section
2.3.2) put on a storage client.

Each generator yields ``(offset, length)`` pairs covering a file of
``file_size`` bytes; :func:`run_access_pattern` drives one through the
VFS and reports throughput plus page-cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..kernel import OpenFlags
from ..kernel.vfs import UserBuffer
from ..units import PAGE_SIZE, bandwidth_mb_s


class _Lcg:
    """Tiny deterministic PRNG (no global random state, sim-safe)."""

    def __init__(self, seed: int):
        self.state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def next(self, bound: int) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state % bound


def sequential(file_size: int, request: int) -> Iterator[tuple[int, int]]:
    """Front-to-back, the paper's methodology."""
    offset = 0
    while offset < file_size:
        yield offset, min(request, file_size - offset)
        offset += request


def strided(file_size: int, request: int, stride: int) -> Iterator[tuple[int, int]]:
    """Fixed stride with wraparound until every stripe is covered."""
    if stride <= 0 or stride % request:
        raise ValueError("stride must be a positive multiple of request")
    lanes = stride // request
    for lane in range(lanes):
        offset = lane * request
        while offset < file_size:
            yield offset, min(request, file_size - offset)
            offset += stride


def uniform_random(file_size: int, request: int, count: int,
                   seed: int = 1) -> Iterator[tuple[int, int]]:
    """Uniform random aligned requests."""
    rng = _Lcg(seed)
    slots = max(1, file_size // request)
    for _ in range(count):
        yield rng.next(slots) * request, request


def hot_cold(file_size: int, request: int, count: int,
             hot_fraction: float = 0.1, hot_hit_pct: int = 90,
             seed: int = 1) -> Iterator[tuple[int, int]]:
    """Zipf-ish: ``hot_hit_pct`` % of requests land in the first
    ``hot_fraction`` of the file."""
    rng = _Lcg(seed)
    slots = max(1, file_size // request)
    hot_slots = max(1, int(slots * hot_fraction))
    for _ in range(count):
        if rng.next(100) < hot_hit_pct:
            slot = rng.next(hot_slots)
        else:
            slot = hot_slots + rng.next(max(1, slots - hot_slots))
        yield min(slot, slots - 1) * request, request


@dataclass
class WorkloadResult:
    """Outcome of one access-pattern run."""

    bytes_moved: int
    elapsed_ns: int
    cache_hits: int
    cache_misses: int

    @property
    def throughput_mb_s(self) -> float:
        return bandwidth_mb_s(self.bytes_moved, self.elapsed_ns)

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def run_access_pattern(node, path: str, pattern, direct: bool = False):
    """Generator: drive ``pattern`` (offset, length pairs) through the
    VFS; returns a :class:`WorkloadResult`."""
    env = node.env
    flags = OpenFlags.RDONLY | (OpenFlags.DIRECT if direct else OpenFlags.RDONLY)
    space = node.new_process_space()
    hits0, misses0 = node.pagecache.hits, node.pagecache.misses
    fd = yield from node.vfs.open(path, flags)
    buf = space.mmap(max(PAGE_SIZE, 1024 * 1024))
    moved = 0
    t0 = env.now
    for offset, length in pattern:
        node.vfs.seek(fd, offset)
        n = yield from node.vfs.read(fd, UserBuffer(space, buf, length))
        moved += n
    elapsed = env.now - t0
    yield from node.vfs.close(fd)
    return WorkloadResult(
        bytes_moved=moved,
        elapsed_ns=elapsed,
        cache_hits=node.pagecache.hits - hits0,
        cache_misses=node.pagecache.misses - misses0,
    )
