"""``python -m repro.bench replica`` — replicated-volume failover table.

Runs the chaos-scenario matrix of :mod:`repro.nbd.chaos` — a three-way
chain-replicated NBD volume under node crashes, NIC resets, link flap
trains, and a crash-reboot-rejoin — and reports, per scenario, the
client-observed outcome (linearizability verdict, completed and failed
operations) and the controller's reconfiguration latencies: detection
of the death to the new chain configuration acknowledged everywhere,
plus the dirty-extent resync span for rejoins.

This driver is intentionally not part of ``bench all``: the replica
runs add nothing to the paper's tables, and keeping them out guarantees
the zero-fault figure output stays byte-identical to
``bench_figures.txt``.  Everything here is deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse

from ..nbd.chaos import SCENARIOS, failover_bound_ns, run_scenario


def _us(ns: int) -> str:
    return f"{ns / 1000:8.1f}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench replica",
        description="Chain-replicated NBD volume under chaos scenarios: "
                    "linearizability verdicts and failover latencies",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="fault-plan / workload seed (default 1); the "
                             "same seed reproduces the table bit-for-bit")
    parser.add_argument("--scenario", action="append", metavar="NAME",
                        choices=sorted(SCENARIOS),
                        help="run only this scenario (repeatable; default "
                             "is the full matrix)")
    args = parser.parse_args(argv)
    names = args.scenario or list(SCENARIOS)

    bound = failover_bound_ns()
    print(f"Replicated NBD chain under chaos (seed {args.seed}, "
          f"failover bound {bound / 1000:.0f} us = lease + resync allowance)")
    print()
    header = (f"{'scenario':<21} {'linearizable':<13} {'ops':>4} {'fail':>4}  "
              f"{'failover us':>11}  {'resync us':>9}  {'bound':>5}")
    print(header)
    print("-" * len(header))
    for name in names:
        r = run_scenario(name, seed=args.seed)
        fo = [f["done_ns"] - f["detect_ns"] for f in r.failovers]
        rs = [x["done_ns"] - x["start_ns"] for x in r.resyncs]
        fo_s = _us(max(fo)) if fo else f"{'-':>8}"
        rs_s = _us(max(rs)) if rs else f"{'-':>8}"
        within = "ok" if r.failovers_within(bound) else "MISS"
        print(f"{name:<21} {r.lin.explain().split(' (')[0]:<13} "
              f"{len(r.history.ops):>4} {len(r.failed_ops):>4}  "
              f"{fo_s:>11}  {rs_s:>9}  {within:>5}")
    print()
    print("reads served at the tail; writes acked at the tail commit point; "
          "every history checked with Wing-Gong")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
