"""Per-figure experiment drivers: regenerate every table and figure.

Each ``fig*``/``table*`` function runs the full simulated experiment and
returns a :class:`FigureData` whose ``render()`` prints the same series
the paper plots.  The registry at the bottom powers the CLI
(``python -m repro.bench <name>``) and the pytest-benchmark targets in
``benchmarks/``.

Paper-vs-measured commentary for every experiment lives in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..cluster import node_pair
from ..gm.registration import RegistrationDomain
from ..hw.cpu import Cpu
from ..hw.params import HOST_P3_1200, HOST_P4_2600, PCI_XD, PCI_XE
from ..sim import Environment
from ..units import KiB, MiB, PAGE_SIZE, to_us, us
from .fileio import (
    build_orfa,
    build_orfs,
    orfa_sequential_read,
    orfs_sequential_read,
)
from .netpipe import ping_pong, prepare_pair
from .report import format_series, format_table
from .transports import GmKernelTransport, GmUserTransport, MxTransport


@dataclass
class FigureData:
    """One regenerated figure: x values and named series."""

    name: str
    title: str
    xlabel: str
    unit: str
    xs: list[int]
    series: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        return format_series(f"{self.name}: {self.title}", self.xlabel,
                             self.xs, self.series, self.unit)


# ---------------------------------------------------------------------------
# shared sweep helpers
# ---------------------------------------------------------------------------


def _netpipe_series(make_a, make_b, sizes: Sequence[int], metric: str,
                    link=PCI_XD, rounds: int = 8) -> list[float]:
    """One transport pair swept over sizes; metric 'latency_us'|'bandwidth'."""
    env = Environment()
    node_a, node_b = node_pair(env, link=link)
    a, b = make_a(node_a), make_b(node_b)
    prepare_pair(env, a, b, max(max(sizes), PAGE_SIZE))
    out = []
    for size in sizes:
        r = ping_pong(env, a, b, size, rounds=rounds)
        out.append(r.one_way_us if metric == "latency_us" else r.bandwidth_mb_s)
    return out


def _mx_pair(context="user", physical=False, no_send_copy=False,
             no_recv_copy=False):
    def make(peer):
        def f(node):
            return MxTransport(node, 1, peer_node=peer, peer_ep=1,
                               context=context, physical=physical,
                               no_send_copy=no_send_copy,
                               no_recv_copy=no_recv_copy)
        return f
    return make(1), make(0)


def _gm_user_pair():
    return (lambda n: GmUserTransport(n, 1, peer_node=1, peer_port=1),
            lambda n: GmUserTransport(n, 1, peer_node=0, peer_port=1))


def _gm_kernel_pair(addressing="virtual"):
    return (lambda n: GmKernelTransport(n, 1, peer_node=1, peer_port=1,
                                        addressing=addressing),
            lambda n: GmKernelTransport(n, 1, peer_node=0, peer_port=1,
                                        addressing=addressing))


# ---------------------------------------------------------------------------
# Figure 1(b): copy vs registration cost
# ---------------------------------------------------------------------------


def fig1b() -> FigureData:
    """Copy cost (P3/P4) vs GM registration/deregistration cost."""
    sizes = [i * 32 * KiB for i in range(1, 9)]  # 32 kB .. 256 kB
    env = Environment()
    cpu_p3 = Cpu(env, HOST_P3_1200, name="p3")
    cpu_p4 = Cpu(env, HOST_P4_2600, name="p4")
    copy_p3, copy_p4, reg, dereg, both = [], [], [], [], []
    for size in sizes:
        pages = size // PAGE_SIZE
        copy_p3.append(to_us(cpu_p3.copy_time_ns(size)))
        copy_p4.append(to_us(cpu_p4.copy_time_ns(size)))
        r = to_us(RegistrationDomain.register_cost_ns(pages))
        d = to_us(RegistrationDomain.deregister_cost_ns(pages))
        reg.append(r)
        dereg.append(d)
        both.append(r + d)
    return FigureData(
        name="fig1b",
        title="copy vs memory registration overhead (GM)",
        xlabel="size",
        unit="us",
        xs=sizes,
        series={
            "Copy (P3 1.2GHz)": copy_p3,
            "Copy (P4 2.6GHz)": copy_p4,
            "Registration": reg,
            "Deregistration": dereg,
            "Register+Dereg": both,
        },
    )


# ---------------------------------------------------------------------------
# Figure 3(b): ORFS direct access on GM, with/without registration cache
# ---------------------------------------------------------------------------


def fig3b(sizes: Sequence[int] = (1024, 4096, 16 * KiB, 64 * KiB, 256 * KiB),
          total: int = MiB) -> FigureData:
    sizes = list(sizes)
    gm_raw = _netpipe_series(*_gm_user_pair(), sizes=sizes, metric="bandwidth")

    orfa_rig = build_orfa("gm", file_size=total)
    orfa = [orfa_sequential_read(orfa_rig, s, total).throughput_mb_s
            for s in sizes]

    rig = build_orfs("gm", file_size=total)
    orfs_cache = [orfs_sequential_read(rig, s, total, direct=True).throughput_mb_s
                  for s in sizes]

    rig_nc = build_orfs("gm", regcache_enabled=False, file_size=total)
    orfs_nocache = [
        orfs_sequential_read(rig_nc, s, total, direct=True).throughput_mb_s
        for s in sizes
    ]
    return FigureData(
        name="fig3b",
        title="ORFS direct access on GM (registration cache impact)",
        xlabel="request",
        unit="MB/s",
        xs=sizes,
        series={
            "GM Raw": gm_raw,
            "ORFA w/ RegCache": orfa,
            "ORFS w/ RegCache": orfs_cache,
            "ORFS w/o RegCache": orfs_nocache,
        },
    )


# ---------------------------------------------------------------------------
# Figure 4(a): registered-virtual vs physical kernel primitives (GM)
# ---------------------------------------------------------------------------


def fig4a(sizes: Sequence[int] = (16, 64, 256, 1024, 4096)) -> FigureData:
    sizes = list(sizes)
    virt = _netpipe_series(*_gm_kernel_pair("virtual"), sizes=sizes,
                           metric="latency_us")
    phys = _netpipe_series(*_gm_kernel_pair("physical"), sizes=sizes,
                           metric="latency_us")
    return FigureData(
        name="fig4a",
        title="GM kernel latency: registered virtual vs physical address",
        xlabel="size",
        unit="us",
        xs=sizes,
        series={"Memory Registration": virt, "Physical Address": phys},
    )


# ---------------------------------------------------------------------------
# Figure 4(b): ORFS/GM direct vs buffered vs raw GM
# ---------------------------------------------------------------------------


def fig4b(sizes: Sequence[int] = (1024, 4096, 16 * KiB, 64 * KiB,
                                  256 * KiB, MiB),
          total: int = 2 * MiB) -> FigureData:
    sizes = list(sizes)
    gm_raw = _netpipe_series(*_gm_user_pair(), sizes=sizes, metric="bandwidth")
    rig = build_orfs("gm", file_size=total)
    direct = [orfs_sequential_read(rig, s, total, direct=True).throughput_mb_s
              for s in sizes]
    buffered = [orfs_sequential_read(rig, s, total).throughput_mb_s
                for s in sizes]
    return FigureData(
        name="fig4b",
        title="ORFS on GM: direct vs buffered file access",
        xlabel="request",
        unit="MB/s",
        xs=sizes,
        series={
            "GM Raw": gm_raw,
            "ORFS/GM Direct": direct,
            "ORFS/GM Buffered": buffered,
        },
    )


# ---------------------------------------------------------------------------
# Figure 5: MX vs GM latency and bandwidth
# ---------------------------------------------------------------------------


def fig5a(sizes: Sequence[int] = (1, 16, 256, 1024, 4096)) -> FigureData:
    sizes = list(sizes)
    return FigureData(
        name="fig5a",
        title="small-message latency: GM vs MX, user vs kernel",
        xlabel="size",
        unit="us",
        xs=sizes,
        series={
            "GM User": _netpipe_series(*_gm_user_pair(), sizes=sizes,
                                       metric="latency_us"),
            "GM Kernel": _netpipe_series(*_gm_kernel_pair(), sizes=sizes,
                                         metric="latency_us"),
            "MX User": _netpipe_series(*_mx_pair("user"), sizes=sizes,
                                       metric="latency_us"),
            "MX Kernel": _netpipe_series(*_mx_pair("kernel"), sizes=sizes,
                                         metric="latency_us"),
        },
    )


def fig5b(sizes: Sequence[int] = (1024, 4096, 16 * KiB, 64 * KiB,
                                  256 * KiB, MiB)) -> FigureData:
    sizes = list(sizes)
    return FigureData(
        name="fig5b",
        title="bandwidth: GM vs MX user vs MX kernel (physical)",
        xlabel="size",
        unit="MB/s",
        xs=sizes,
        series={
            "GM": _netpipe_series(*_gm_user_pair(), sizes=sizes,
                                  metric="bandwidth"),
            "MX User": _netpipe_series(*_mx_pair("user"), sizes=sizes,
                                       metric="bandwidth"),
            "MX Kernel Physical": _netpipe_series(
                *_mx_pair("kernel", physical=True), sizes=sizes,
                metric="bandwidth"),
        },
    )


# ---------------------------------------------------------------------------
# Figure 6: medium-message copy removal
# ---------------------------------------------------------------------------


def fig6(sizes: Sequence[int] = (1024, 4096, 16 * KiB, 32 * KiB, 64 * KiB,
                                 256 * KiB)) -> FigureData:
    sizes = list(sizes)
    return FigureData(
        name="fig6",
        title="impact of removing the medium-message copies (MX)",
        xlabel="size",
        unit="MB/s",
        xs=sizes,
        series={
            "MX User": _netpipe_series(*_mx_pair("user"), sizes=sizes,
                                       metric="bandwidth"),
            "MX Kernel": _netpipe_series(
                *_mx_pair("kernel", physical=True), sizes=sizes,
                metric="bandwidth"),
            "MX Kernel No-send-copy": _netpipe_series(
                *_mx_pair("kernel", physical=True, no_send_copy=True),
                sizes=sizes, metric="bandwidth"),
            "MX Kernel No-copy (predicted)": _netpipe_series(
                *_mx_pair("kernel", physical=True, no_send_copy=True,
                          no_recv_copy=True),
                sizes=sizes, metric="bandwidth"),
        },
    )


# ---------------------------------------------------------------------------
# Figure 7: ORFS on GM vs MX
# ---------------------------------------------------------------------------


def fig7a(sizes: Sequence[int] = (1024, 4096, 16 * KiB, 64 * KiB,
                                  256 * KiB, MiB),
          total: int = 2 * MiB) -> FigureData:
    sizes = list(sizes)
    gm_raw = _netpipe_series(*_gm_user_pair(), sizes=sizes, metric="bandwidth")
    mx_raw = _netpipe_series(*_mx_pair("kernel"), sizes=sizes,
                             metric="bandwidth")
    rig_gm = build_orfs("gm", file_size=total)
    rig_mx = build_orfs("mx", file_size=total)
    return FigureData(
        name="fig7a",
        title="direct file access: ORFS over GM vs MX",
        xlabel="request",
        unit="MB/s",
        xs=sizes,
        series={
            "GM": gm_raw,
            "ORFS/GM Direct": [
                orfs_sequential_read(rig_gm, s, total, direct=True).throughput_mb_s
                for s in sizes],
            "MX Kernel": mx_raw,
            "ORFS/MX Direct": [
                orfs_sequential_read(rig_mx, s, total, direct=True).throughput_mb_s
                for s in sizes],
        },
    )


def fig7b(sizes: Sequence[int] = (1024, 4096, 16 * KiB, 64 * KiB,
                                  256 * KiB, MiB),
          total: int = 2 * MiB) -> FigureData:
    sizes = list(sizes)
    gm_raw = _netpipe_series(*_gm_user_pair(), sizes=sizes, metric="bandwidth")
    mx_raw = _netpipe_series(*_mx_pair("kernel"), sizes=sizes,
                             metric="bandwidth")
    rig_gm = build_orfs("gm", file_size=total)
    rig_mx = build_orfs("mx", file_size=total)
    return FigureData(
        name="fig7b",
        title="buffered file access: ORFS over GM vs MX",
        xlabel="request",
        unit="MB/s",
        xs=sizes,
        series={
            "GM": gm_raw,
            "ORFS/GM Buffered": [
                orfs_sequential_read(rig_gm, s, total).throughput_mb_s
                for s in sizes],
            "MX Kernel": mx_raw,
            "ORFS/MX Buffered": [
                orfs_sequential_read(rig_mx, s, total).throughput_mb_s
                for s in sizes],
        },
    )


# ---------------------------------------------------------------------------
# Figure 8: SOCKETS-GM vs SOCKETS-MX (PCI-XE)
# ---------------------------------------------------------------------------


def _socket_sweep(kind: str, sizes: Sequence[int], rounds: int = 8):
    """One socket protocol swept over sizes; returns (latencies, bandwidths)."""
    from ..sockets import SocketsGmModule, SocketsMxModule, ethernet_pair

    lat, bw = [], []
    for size in sizes:
        env = Environment()
        a, b = node_pair(env, link=PCI_XE)
        if kind == "mx":
            ma, mb = SocketsMxModule(a, 9), SocketsMxModule(b, 9)
        elif kind == "gm":
            ma, mb = SocketsGmModule(a, 9), SocketsGmModule(b, 9)
        else:
            ma, mb = ethernet_pair(env, a, b)
        spa, spb = a.new_process_space(), b.new_process_space()
        va = spa.mmap(max(size, PAGE_SIZE), populate=True)
        vb = spb.mmap(max(size, PAGE_SIZE), populate=True)
        times = {}
        warmup = 2

        def server(env):
            if kind == "tcp":
                mb.listen()
            else:
                yield from mb.listen()
            sock = yield from mb.accept()
            for _ in range(rounds + warmup):
                yield from sock.recv(spb, vb, size)
                yield from sock.send(spb, vb, size)

        def client(env):
            if kind == "tcp":
                sock = yield from ma.connect()
            else:
                sock = yield from ma.connect(1, 9)
            for i in range(rounds + warmup):
                if i == warmup:
                    times["t0"] = env.now
                yield from sock.send(spa, va, size)
                yield from sock.recv(spa, va, size)
            times["t1"] = env.now

        env.process(server(env))
        env.run(until=env.process(client(env)))
        one_way = (times["t1"] - times["t0"]) / (2 * rounds)
        lat.append(to_us(one_way))
        bw.append(size / one_way * 1000)  # MB/s
    return lat, bw


def fig8a(sizes: Sequence[int] = (1, 16, 256, 1024, 4096)) -> FigureData:
    sizes = list(sizes)
    gm_lat, _ = _socket_sweep("gm", sizes)
    mx_lat, _ = _socket_sweep("mx", sizes)
    return FigureData(
        name="fig8a",
        title="socket latency: SOCKETS-GM vs SOCKETS-MX (PCI-XE)",
        xlabel="size",
        unit="us",
        xs=sizes,
        series={"Sockets-GM": gm_lat, "Sockets-MX": mx_lat},
    )


def fig8b(sizes: Sequence[int] = (1024, 4096, 16 * KiB, 64 * KiB,
                                  256 * KiB, MiB)) -> FigureData:
    sizes = list(sizes)
    _, gm_bw = _socket_sweep("gm", sizes)
    _, mx_bw = _socket_sweep("mx", sizes)
    return FigureData(
        name="fig8b",
        title="socket bandwidth: SOCKETS-GM vs SOCKETS-MX (PCI-XE)",
        xlabel="size",
        unit="MB/s",
        xs=sizes,
        series={"Sockets-GM": gm_bw, "Sockets-MX": mx_bw},
    )


# ---------------------------------------------------------------------------
# Table 1: results summary
# ---------------------------------------------------------------------------


def table1() -> str:
    """The paper's summary table, regenerated from the experiments."""
    # Kernel latency (figure 5(a), 1 byte)
    gm_k = _netpipe_series(*_gm_kernel_pair(), sizes=[1], metric="latency_us")[0]
    gm_u = _netpipe_series(*_gm_user_pair(), sizes=[1], metric="latency_us")[0]
    mx_k = _netpipe_series(*_mx_pair("kernel"), sizes=[1], metric="latency_us")[0]
    mx_u = _netpipe_series(*_mx_pair("user"), sizes=[1], metric="latency_us")[0]

    # Buffered / direct remote file access (plateau at 1 MiB requests)
    total = 2 * MiB
    rig_gm = build_orfs("gm", file_size=total)
    rig_mx = build_orfs("mx", file_size=total)
    buf_gm = orfs_sequential_read(rig_gm, MiB, total).throughput_mb_s
    buf_mx = orfs_sequential_read(rig_mx, MiB, total).throughput_mb_s
    dir_gm = orfs_sequential_read(rig_gm, MiB, total, direct=True).throughput_mb_s
    dir_mx = orfs_sequential_read(rig_mx, MiB, total, direct=True).throughput_mb_s

    # Sockets (figure 8)
    gm_lat, gm_bw = _socket_sweep("gm", [1, MiB])
    mx_lat, mx_bw = _socket_sweep("mx", [1, MiB])
    link = PCI_XE.link_bandwidth / 1e6

    rows = [
        ["Kernel latency",
         f"{gm_k:.1f} us ({gm_u:.1f} in user-space)",
         f"{mx_k:.1f} us ({mx_u:.1f} in user-space)"],
        ["Buffered remote file access",
         f"{buf_gm:.0f} MB/s (needs physical API)",
         f"{buf_mx:.0f} MB/s (+{(buf_mx / buf_gm - 1) * 100:.0f} %)"],
        ["Direct remote file access",
         f"{dir_gm:.0f} MB/s (needs kernel patching)",
         f"{dir_mx:.0f} MB/s (at least as good)"],
        ["0-copy socket latency",
         f"{gm_lat[0]:.1f} us",
         f"{mx_lat[0]:.1f} us"],
        ["0-copy socket bandwidth",
         f"{gm_bw[1]:.0f} MB/s ({gm_bw[1] / link * 100:.0f} % of link)",
         f"{mx_bw[1]:.0f} MB/s (+{(mx_bw[1] / gm_bw[1] - 1) * 100:.0f} %)"],
    ]
    return format_table("table1: MX and GM in-kernel performance summary",
                        ["", "GM", "MX"], rows)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

FIGURES: dict[str, Callable[[], FigureData]] = {
    "fig1b": fig1b,
    "fig3b": fig3b,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6": fig6,
    "fig7a": fig7a,
    "fig7b": fig7b,
    "fig8a": fig8a,
    "fig8b": fig8b,
}


def run_figure(name: str) -> str:
    """Run one experiment by name; returns its rendered table."""
    if name == "table1":
        return table1()
    try:
        fn = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(FIGURES) + ['table1']}"
        ) from None
    return fn().render()
