"""The in-kernel socket abstraction shared by all three protocol stacks.

:class:`KSocket` is what an application sees after connect/accept:
``send``/``recv`` generators charging a syscall and the socket layer,
then delegating to the protocol module.  Semantics are
message-boundary-preserving (each ``send`` is one message and each
``recv`` must offer at least that much buffer) — the discipline NetPIPE
and all of this repository's workloads follow.  A ``recv`` posted with a
smaller buffer than the arriving message raises, loudly, instead of
silently truncating.
"""

from __future__ import annotations

import itertools
from ..errors import SocketError
from ..mem.addrspace import AddressSpace

#: The socket-layer bookkeeping per call (lookup, locking), on top of
#: the syscall itself.
SOCK_LAYER_NS = 500

_conn_ids = itertools.count(0x5000)


def new_connection_id() -> int:
    """Allocate a cluster-unique connection (match) id."""
    return next(_conn_ids)


class KSocket:
    """A connected socket endpoint bound to one protocol module."""

    def __init__(self, module, conn_id: int, peer_node: int, peer_port: int):
        self.module = module
        self.conn_id = conn_id
        self.peer_node = peer_node
        self.peer_port = peer_port
        self.node = module.node
        self.cpu = module.node.cpu
        self._open = True
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- the application-facing calls ---------------------------------------

    def send(self, space: AddressSpace, vaddr: int, length: int):
        """Generator: send(2) from a user buffer; returns bytes sent."""
        self._check_open()
        if length <= 0:
            raise SocketError(f"send length must be positive, got {length}")
        yield from self.cpu.syscall()
        yield from self.cpu.work(SOCK_LAYER_NS)
        yield from self.module.protocol_send(self, space, vaddr, length)
        self.bytes_sent += length
        return length

    def recv(self, space: AddressSpace, vaddr: int, length: int):
        """Generator: recv(2) into a user buffer; returns bytes received."""
        self._check_open()
        if length <= 0:
            raise SocketError(f"recv length must be positive, got {length}")
        yield from self.cpu.syscall()
        yield from self.cpu.work(SOCK_LAYER_NS)
        n = yield from self.module.protocol_recv(self, space, vaddr, length)
        self.bytes_received += n
        return n

    def close(self) -> None:
        self._open = False

    def _check_open(self) -> None:
        if not self._open:
            raise SocketError("socket is closed")
