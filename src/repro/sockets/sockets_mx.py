"""SOCKETS-MX: the socket protocol over the MX kernel interface.

"With the fully asynchronous send functions in MX the overhead is
significantly lower than when the full TCP/IP stack needs to be
traversed" (section 5.3).  The measured result this module reproduces:
5 us one-way for 1-byte messages — "only a 1 us overhead over raw MX
latency ... very good since a system call is involved (about 400 ns)".

One MX kernel endpoint per node serves every socket; connections are
demultiplexed by match id.  Data moves as user-virtual segments — the
MX kernel API does the pinning/copying per its message classes, no
socket-level staging at all.
"""

from __future__ import annotations

from ..cluster.node import Node
from ..errors import SocketError
from ..mx.api import MxEndpoint
from ..mx.memtypes import MxSegment
from ..sim import Store
from .base import KSocket, new_connection_id

#: match id reserved for connection requests (SYN messages)
LISTEN_MATCH = 1

#: SYN/ACK control payload size on the wire
_CTRL_BYTES = 16


class SocketsMxModule:
    """The sockets-MX protocol module of one node."""

    def __init__(self, node: Node, port_id: int):
        self.node = node
        self.port_id = port_id
        self.endpoint = MxEndpoint(node, port_id, context="kernel")
        self._ctrl = node.kspace.kmalloc(256)
        self._accept_queue: Store = Store(node.env, "sockmx.accept")
        self._listening = False

    # -- connection management ------------------------------------------------

    def listen(self):
        """Generator: start accepting connections."""
        if self._listening:
            raise SocketError("already listening")
        self._listening = True
        self.node.env.process(self._listener(), name="sockmx.listen")
        return
        yield  # pragma: no cover

    def _listener(self):
        while True:
            req = yield from self.endpoint.irecv(
                [MxSegment.kernel(self._ctrl.vaddr, 256)], match=LISTEN_MATCH
            )
            done = yield from self.endpoint.wait(req, blocking=True)
            syn = done.result.meta
            if not (isinstance(syn, tuple) and syn[0] == "syn"):
                raise SocketError(f"bad connection request: {syn!r}")
            _, conn_id, client_node, client_port = syn
            sock = KSocket(self, conn_id, client_node, client_port)
            ack = yield from self.endpoint.isend(
                client_node, client_port,
                [MxSegment.kernel(self._ctrl.vaddr, _CTRL_BYTES)],
                match=conn_id, meta=("ack", conn_id),
            )
            yield from self.endpoint.wait(ack)
            self._accept_queue.put(sock)

    def accept(self):
        """Generator: next accepted socket."""
        sock = yield self._accept_queue.get()
        return sock

    def connect(self, server_node: int, server_port: int):
        """Generator: open a connection to a listening peer module."""
        conn_id = new_connection_id()
        ack_recv = yield from self.endpoint.irecv(
            [MxSegment.kernel(self._ctrl.vaddr, 256)], match=conn_id
        )
        syn = yield from self.endpoint.isend(
            server_node, server_port,
            [MxSegment.kernel(self._ctrl.vaddr, _CTRL_BYTES)],
            match=LISTEN_MATCH,
            meta=("syn", conn_id, self.node.node_id, self.port_id),
        )
        yield from self.endpoint.wait(syn)
        done = yield from self.endpoint.wait(ack_recv, blocking=True)
        if done.result.meta != ("ack", conn_id):
            raise SocketError(f"bad connection ack: {done.result.meta!r}")
        return KSocket(self, conn_id, server_node, server_port)

    # -- the data path ------------------------------------------------------------

    def protocol_send(self, sock: KSocket, space, vaddr: int, length: int):
        """The user buffer goes straight to MX as a user-virtual segment;
        MX's message classes do the rest (PIO / bounce copy / rendezvous)."""
        req = yield from self.endpoint.isend(
            sock.peer_node, sock.peer_port,
            [MxSegment.user(space, vaddr, length)],
            match=sock.conn_id,
        )
        yield from self.endpoint.wait(req)

    def protocol_recv(self, sock: KSocket, space, vaddr: int, length: int):
        req = yield from self.endpoint.irecv(
            [MxSegment.user(space, vaddr, length)], match=sock.conn_id
        )
        done = yield from self.endpoint.wait(req, blocking=True)
        completion = done.result
        if completion.truncated:
            raise SocketError(
                f"message of {completion.size}+ bytes arrived for a "
                f"{length}-byte recv (posted buffer too small)"
            )
        return completion.size
