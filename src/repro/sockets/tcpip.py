"""The commodity baseline: TCP/IP sockets over gigabit Ethernet.

The paper's reference point for SOCKETS-MX latency: "A common
GIGA-ETHERNET network might get much more [than 15 us]" (section 5.3),
and its motivation cites [Sum00]: "TCP/IP is known to use 50 % of the
overall transaction cost" — fragmentation into MTU-sized packets and
software checksumming on both sides.

The stack model charges, per message:

* syscall + socket layer (shared with the Myrinet stacks);
* per-packet protocol processing (header build/parse, 1500-byte MTU);
* a software checksum pass over every byte on both sides;
* one copy on each side (user <-> kernel sk_buff);
* interrupt + wakeup on the receiver (with coalescing beyond one MTU).

The wire is a real :class:`repro.hw.Link` at 125 MB/s, so streaming
still pipelines and contends properly.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.node import Node
from ..errors import SocketError
from ..hw.link import Link
from ..hw.params import LinkParams
from ..sim import Environment, Store
from ..units import MB, S
from .base import KSocket, new_connection_id

GIG_E = LinkParams(
    name="GigE",
    link_bandwidth=125 * MB,
    pci_bandwidth=264 * MB,  # 32-bit/66 PCI NIC
    propagation_ns=3000,  # store-and-forward commodity switch
    cut_through_lag_ns=12000,  # first-packet serialization at the NIC
)

MTU = 1500
#: per-packet TCP/IP processing on each side (header, routing, ack bookkeeping)
_PER_PACKET_NS = 2200
#: software checksum rate (bytes/s)
_CHECKSUM_BW = 1.6e9
#: receive interrupt + process wakeup
_IRQ_WAKEUP_NS = 12000
#: fixed per-message stack cost (connection lookup, cwnd bookkeeping)
_PER_MESSAGE_NS = 4000


class TcpStack:
    """One node's TCP/IP stack on a dedicated Ethernet link.

    Build two stacks and join them with :func:`ethernet_pair`.
    """

    def __init__(self, node: Node):
        self.node = node
        self.cpu = node.cpu
        self.env = node.env
        self._link: Optional[Link] = None
        self._end = "a"
        self._inbound: dict[int, Store] = {}  # conn id -> message store
        self._accept_queue: Store = Store(node.env, "tcp.accept")
        self._listening = False

    # -- wiring ---------------------------------------------------------------

    def attach(self, link: Link, end: str) -> None:
        self._link = link
        self._end = end
        link.attach(end, self._on_arrival)

    def _on_arrival(self, frame) -> None:
        kind = frame[0]
        if kind == "syn":
            _, conn_id, payload = frame
            if not self._listening:
                return
            self._accept_queue.put(conn_id)
            return
        _, conn_id, payload = frame
        self._inbound.setdefault(conn_id, Store(self.env, "tcp.in")).put(payload)

    # -- connections -------------------------------------------------------------

    def listen(self) -> None:
        self._listening = True

    def accept(self):
        """Generator: next accepted connection."""
        conn_id = yield self._accept_queue.get()
        return KSocket(self, conn_id, peer_node=-1, peer_port=-1)

    def connect(self):
        """Generator: open a connection to the stack on the other end."""
        if self._link is None:
            raise SocketError("stack not attached to a link")
        conn_id = new_connection_id()
        yield from self.cpu.work(_PER_MESSAGE_NS)
        yield from self._link.transmit(self._end, ("syn", conn_id, b""), 64)
        # One RTT for the handshake to complete.
        yield self.env.timeout(2 * GIG_E.propagation_ns + 2 * _PER_PACKET_NS)
        return KSocket(self, conn_id, peer_node=-1, peer_port=-1)

    # -- the data path ----------------------------------------------------------------

    def _stack_cost(self, length: int):
        """Per-side protocol cost: per-packet work + checksum pass."""
        packets = max(1, -(-length // MTU))
        checksum = round(length * S / _CHECKSUM_BW)
        yield from self.cpu.resource.acquire(
            _PER_MESSAGE_NS + packets * _PER_PACKET_NS + checksum
        )

    def protocol_send(self, sock: KSocket, space, vaddr: int, length: int):
        if self._link is None:
            raise SocketError("stack not attached to a link")
        yield from self._stack_cost(length)
        yield from self.cpu.copy(length)  # user -> sk_buff
        data = space.read_payload(vaddr, length)
        yield from self._link.transmit(
            self._end, ("data", sock.conn_id, data), length
        )

    def protocol_recv(self, sock: KSocket, space, vaddr: int, length: int):
        store = self._inbound.setdefault(sock.conn_id, Store(self.env, "tcp.in"))
        data = yield store.get()
        yield from self.cpu.work(_IRQ_WAKEUP_NS)
        yield from self._stack_cost(len(data))
        yield from self.cpu.copy(len(data))  # sk_buff -> user
        if len(data) > length:
            raise SocketError(
                f"message of {len(data)} bytes arrived for a "
                f"{length}-byte recv"
            )
        space.write_payload(vaddr, data)
        return len(data)


def ethernet_pair(env: Environment, a: Node, b: Node) -> tuple[TcpStack, TcpStack]:
    """Two TCP stacks joined by a dedicated gigabit Ethernet link."""
    link = Link(env, GIG_E, name="eth")
    sa, sb = TcpStack(a), TcpStack(b)
    sa.attach(link, "a")
    sb.attach(link, "b")
    return sa, sb
