"""SOCKETS-GM: the socket protocol over GM, with its two handicaps.

Section 5.3: SOCKETS-GM "offers the same capabilities [as SOCKETS-MX]
but lacked two major skills.  Firstly, limited completion notification
mechanisms in GM require the use of an extra (dispatching) kernel
thread which increases the latency.  Secondly, memory registration
problems are similar to ORFS direct file access troubles."

Model, mechanism by mechanism:

* **Dispatch thread** — GM's unified event queue cannot wake the right
  socket sleeper, so one kernel thread per module drains the queue and
  routes completions.  Every received message therefore pays the
  thread's context switch (~4 us) plus waking the actual waiter.
  *Sends* run in the caller's context under a port lock (posting a
  descriptor needs no notification).
* **Bounce buffers** — application buffers are not registered; data is
  staged through pre-registered kernel bounce buffers.  The send-side
  copy fully precedes the DMA (GM cannot transmit from a buffer still
  being written).  The receive-side copy is packet-pipelined with the
  arriving wire data, so only the final chunk (<= 32 kB) remains on the
  critical path for large messages.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.node import Node
from ..errors import SocketError
from ..gm.api import GmEventKind
from ..gm.kernel import GmKernelPort
from ..sim import Store
from ..units import MiB
from .base import KSocket, new_connection_id

#: match id reserved for connection requests (SYN messages)
LISTEN_MATCH = 1
_CTRL_BYTES = 16

#: dispatch-thread context switch per delivered completion
_KTHREAD_WAKE_NS = 4000
#: waking the socket sleeper once its data is ready
_WAITER_WAKE_NS = 1500
#: port spinlock around a caller-context send
_PORT_LOCK_NS = 300
#: receive copy is pipelined with packet arrival beyond this chunk
_RECV_COPY_PIPELINE_CHUNK = 32 * 1024

#: bounce pool geometry
_TX_SLOTS = 4
_RX_SLOTS = 4
MAX_SOCK_MSG = MiB


class SocketsGmModule:
    """The sockets-GM protocol module of one node."""

    def __init__(self, node: Node, port_id: int):
        self.node = node
        self.port_id = port_id
        self.port = GmKernelPort(node, port_id)
        self.cpu = node.cpu
        self.env = node.env
        self._tx = []  # (alloc, busy)
        self._rx = []  # allocs; free-list indexes
        self._rx_free: list[int] = []
        self._rx_waiters: Store = Store(node.env, "sockgm.rxfree")
        self._pending: dict[int, object] = {}  # match -> waiter event
        self._accept_queue: Store = Store(node.env, "sockgm.accept")
        self._listening = False
        self._ready = node.env.process(self._setup(), name="sockgm.setup")
        node.env.process(self._dispatch_thread(), name="sockgm.dispatch")

    @property
    def ready(self):
        """Event firing once the bounce pools are registered."""
        return self._ready

    def _setup(self):
        for _ in range(_TX_SLOTS):
            alloc = self.node.kspace.vmalloc(MAX_SOCK_MSG + 4096)
            yield from self.port.register_kernel(alloc.vaddr, MAX_SOCK_MSG + 4096)
            self._tx.append([alloc, False])
        for i in range(_RX_SLOTS):
            alloc = self.node.kspace.vmalloc(MAX_SOCK_MSG + 4096)
            yield from self.port.register_kernel(alloc.vaddr, MAX_SOCK_MSG + 4096)
            self._rx.append(alloc)
            self._rx_free.append(i)

    # -- the dispatch kernel thread ----------------------------------------------

    def _dispatch_thread(self):
        """Drain GM's unified event queue; every completion costs the
        thread's context switch before it reaches anyone."""
        if not self._ready.processed:
            yield self._ready
        while True:
            event = yield from self.port.receive_event()
            yield from self.cpu.work(_KTHREAD_WAKE_NS)
            if event.kind is GmEventKind.SENT:
                kind, idx = event.tag
                if kind != "tx":
                    raise SocketError(f"unexpected SENT tag {event.tag!r}")
                self._tx[idx][1] = False
                continue
            waiter = self._pending.pop(event.match, None)
            if waiter is None:
                raise SocketError(f"message for unknown match {event.match}")
            yield from self.cpu.work(_WAITER_WAKE_NS)
            waiter.succeed(event)

    def _await_match(self, match: int):
        """Register interest in the next message with ``match``; returns
        the event the dispatch thread will fire."""
        if match in self._pending:
            raise SocketError(f"match {match} already awaited")
        ev = self.env.event(f"sockgm.m{match}")
        self._pending[match] = ev
        return ev

    # -- bounce pools -------------------------------------------------------------

    def _take_tx(self):
        """Generator: a free tx slot (they recycle on SENT events)."""
        while True:
            for idx, slot in enumerate(self._tx):
                if not slot[1]:
                    slot[1] = True
                    return idx
            # All four in flight: wait a beat for SENT processing.
            yield self.env.timeout(1000)

    def _take_rx(self):
        if self._rx_free:
            return self._rx_free.pop()
        return None

    # -- connection management -------------------------------------------------------

    def listen(self):
        """Generator: start accepting connections."""
        if self._listening:
            raise SocketError("already listening")
        self._listening = True
        if not self._ready.processed:
            yield self._ready
        self.env.process(self._listener(), name="sockgm.listen")

    def _listener(self):
        while True:
            rx = yield from self._post_ctrl_recv(LISTEN_MATCH)
            event = yield rx
            syn = event.meta
            if not (isinstance(syn, tuple) and syn[0] == "syn"):
                raise SocketError(f"bad connection request: {syn!r}")
            _, conn_id, client_node, client_port = syn
            sock = KSocket(self, conn_id, client_node, client_port)
            yield from self._ctrl_send(client_node, client_port, conn_id,
                                       ("ack", conn_id))
            self._accept_queue.put(sock)

    def accept(self):
        """Generator: next accepted socket."""
        sock = yield self._accept_queue.get()
        return sock

    def connect(self, server_node: int, server_port: int):
        """Generator: open a connection to a listening peer module."""
        if not self._ready.processed:
            yield self._ready
        conn_id = new_connection_id()
        ack = yield from self._post_ctrl_recv(conn_id)
        yield from self._ctrl_send(server_node, server_port, LISTEN_MATCH,
                                   ("syn", conn_id, self.node.node_id,
                                    self.port_id))
        event = yield ack
        if event.meta != ("ack", conn_id):
            raise SocketError(f"bad connection ack: {event.meta!r}")
        return KSocket(self, conn_id, server_node, server_port)

    def _post_ctrl_recv(self, match: int):
        idx = self._take_rx()
        if idx is None:
            raise SocketError("rx bounce pool exhausted")
        waiter = self._await_match(match)
        alloc = self._rx[idx]
        yield from self.port.provide_receive_buffer_registered(
            alloc.vaddr, _CTRL_BYTES + 64, match=match, tag=("rx", idx)
        )
        waiter.add_callback(lambda ev: self._rx_free.append(idx))
        return waiter

    def _ctrl_send(self, dst_node: int, dst_port: int, match: int, meta):
        idx = yield from self._take_tx()
        alloc = self._tx[idx][0]
        yield from self.cpu.work(_PORT_LOCK_NS)
        yield from self.port.send_registered(
            dst_node, dst_port, alloc.vaddr, _CTRL_BYTES, match=match,
            tag=("tx", idx), meta=meta,
        )

    # -- the data path ------------------------------------------------------------------

    def protocol_send(self, sock: KSocket, space, vaddr: int, length: int):
        """Copy into a registered bounce buffer, then gm_send from it —
        the registration handicap in action."""
        if length > MAX_SOCK_MSG:
            raise SocketError(f"message of {length} exceeds {MAX_SOCK_MSG}")
        idx = yield from self._take_tx()
        alloc = self._tx[idx][0]
        # The modeled bounce copy is charged as before; the host relays
        # page views user->kernel without an intermediate bytes object.
        yield from self.cpu.copy(length)
        self.node.kspace.write_payload(alloc.vaddr, space.read_payload(vaddr, length))
        yield from self.cpu.work(_PORT_LOCK_NS)
        yield from self.port.send_registered(
            sock.peer_node, sock.peer_port, alloc.vaddr, length,
            match=sock.conn_id, tag=("tx", idx),
        )

    def protocol_recv(self, sock: KSocket, space, vaddr: int, length: int):
        """Post a registered bounce, sleep, and let the dispatch thread
        wake us; copy the (packet-pipelined) tail to the user buffer."""
        idx = self._take_rx()
        if idx is None:
            raise SocketError("rx bounce pool exhausted")
        alloc = self._rx[idx]
        waiter = self._await_match(sock.conn_id)
        yield from self.port.provide_receive_buffer_registered(
            alloc.vaddr, min(max(length, 64), MAX_SOCK_MSG), match=sock.conn_id,
            tag=("rx", idx),
        )
        event = yield waiter
        if event.size > length:
            self._rx_free.append(idx)
            raise SocketError(
                f"message of {event.size} bytes arrived for a "
                f"{length}-byte recv"
            )
        # The copy out of the bounce overlaps packet arrival; only the
        # final chunk remains on the critical path.
        tail = min(event.size, _RECV_COPY_PIPELINE_CHUNK)
        yield from self.cpu.resource.acquire(self.cpu.copy_time_ns(tail))
        self.cpu.copied_bytes += event.size
        space.write_payload(vaddr, self.node.kspace.read_payload(alloc.vaddr, event.size))
        self._rx_free.append(idx)
        return event.size
