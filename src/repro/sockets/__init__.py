"""Zero-copy socket protocols over the Myrinet kernel interfaces.

Section 5.3 of the paper: SOCKETS-MX "adds a new SOCKET protocol to the
LINUX kernel where data is directly passed onto the MYRINET network
bypassing TCP/IP", letting unmodified binaries use the high-speed
network.  SOCKETS-GM offered the same service earlier, handicapped by
GM's two structural problems the paper names:

* *limited completion notification* — all port events funnel through an
  extra dispatching kernel thread (:class:`repro.kernel.KernelThread`),
  adding a context switch to every message;
* *memory registration problems* — arbitrary application buffers cannot
  be handed to GM directly, so data is staged through pre-registered
  bounce buffers (a send-side copy that is never overlapped, and a
  receive-side copy that packet-pipelining can mostly hide).

SOCKETS-MX simply passes user-virtual segments to the MX kernel API.

:mod:`repro.sockets.tcpip` adds the commodity baseline: the same socket
calls over gigabit Ethernet through a TCP/IP stack model (checksums +
fragmentation — "TCP/IP is known to use 50 % of the overall transaction
cost" [Sum00]).
"""

from .base import KSocket, SocketError
from .sockets_gm import SocketsGmModule
from .sockets_mx import SocketsMxModule
from .tcpip import GIG_E, TcpStack, ethernet_pair

__all__ = [
    "GIG_E",
    "KSocket",
    "SocketError",
    "SocketsGmModule",
    "SocketsMxModule",
    "TcpStack",
    "ethernet_pair",
]
