"""Physical memory: a frame allocator whose frames back real bytes.

Frames are identified by PFN (page frame number).  A frame's physical
base address is ``pfn * PAGE_SIZE``; helpers convert both ways.  Byte
storage is allocated lazily (a frame that is never written costs no
Python memory), which lets benchmarks simulate multi-gigabyte transfers
cheaply while correctness tests still see real data.

Pin counts live here, on the frame, because pinning is a property of
physical pages: both ``get_user_pages`` (user buffers) and the page
cache (always-resident pages) end up bumping the same counter in Linux.
"""

from __future__ import annotations

from typing import Optional

from ..errors import OutOfMemory, PinningError
from ..units import PAGE_SHIFT, PAGE_SIZE

_ZERO_PAGE = bytes(PAGE_SIZE)


class Frame:
    """One physical page frame: PFN, pin count, lazy byte storage."""

    __slots__ = ("pfn", "pin_count", "_data")

    def __init__(self, pfn: int):
        self.pfn = pfn
        self.pin_count = 0
        self._data: Optional[bytearray] = None

    @property
    def phys_addr(self) -> int:
        """Physical base address of this frame."""
        return self.pfn << PAGE_SHIFT

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    def pin(self) -> None:
        """Take a pin reference (page cannot be freed/migrated while held)."""
        self.pin_count += 1

    def unpin(self) -> None:
        """Drop a pin reference; unbalanced unpin is a caller bug."""
        if self.pin_count <= 0:
            raise PinningError(f"unpin of unpinned frame pfn={self.pfn}")
        self.pin_count -= 1

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` within the frame."""
        self._check_range(offset, length)
        if self._data is None:
            return _ZERO_PAGE[offset : offset + length]
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` within the frame."""
        self._check_range(offset, len(data))
        if self._data is None:
            self._data = bytearray(PAGE_SIZE)
        self._data[offset : offset + len(data)] = data

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > PAGE_SIZE:
            raise ValueError(
                f"frame access out of range: offset={offset} length={length}"
            )


class PhysicalMemory:
    """Fixed-size pool of frames with O(1) alloc/free.

    ``alloc_contiguous`` serves kmalloc-style requests needing physically
    adjacent frames; it scans for the lowest adjacent run, which is
    plenty for simulation scale.
    """

    def __init__(self, total_frames: int):
        if total_frames < 1:
            raise ValueError(f"need at least 1 frame, got {total_frames}")
        self.total_frames = total_frames
        self._frames: dict[int, Frame] = {}
        self._free: set[int] = set(range(total_frames))

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def allocated_frames(self) -> int:
        return self.total_frames - len(self._free)

    def alloc(self) -> Frame:
        """Allocate one frame (any PFN)."""
        if not self._free:
            raise OutOfMemory("no free physical frames")
        pfn = min(self._free)  # deterministic choice
        self._free.discard(pfn)
        frame = Frame(pfn)
        self._frames[pfn] = frame
        return frame

    def alloc_contiguous(self, count: int) -> list[Frame]:
        """Allocate ``count`` physically adjacent frames (kmalloc model)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if count > len(self._free):
            raise OutOfMemory(f"need {count} frames, only {len(self._free)} free")
        candidates = sorted(self._free)
        run_start = 0
        for i in range(1, len(candidates) + 1):
            if i == len(candidates) or candidates[i] != candidates[i - 1] + 1:
                if i - run_start >= count:
                    pfns = candidates[run_start : run_start + count]
                    frames = []
                    for pfn in pfns:
                        self._free.discard(pfn)
                        frame = Frame(pfn)
                        self._frames[pfn] = frame
                        frames.append(frame)
                    return frames
                run_start = i
        raise OutOfMemory(f"no physically contiguous run of {count} frames")

    def free(self, frame: Frame) -> None:
        """Return a frame to the pool; pinned frames cannot be freed."""
        if frame.pinned:
            raise PinningError(f"freeing pinned frame pfn={frame.pfn}")
        if frame.pfn not in self._frames:
            raise ValueError(f"double free of frame pfn={frame.pfn}")
        del self._frames[frame.pfn]
        self._free.add(frame.pfn)

    def frame(self, pfn: int) -> Frame:
        """Look up an allocated frame by PFN."""
        try:
            return self._frames[pfn]
        except KeyError:
            raise ValueError(f"pfn {pfn} is not an allocated frame") from None

    def frame_at_phys(self, phys_addr: int) -> Frame:
        """Look up the allocated frame containing physical address."""
        return self.frame(phys_addr >> PAGE_SHIFT)

    # -- raw physical-address data access (what a DMA engine does) --------

    def read_phys(self, phys_addr: int, length: int) -> bytes:
        """Read bytes starting at a physical address, crossing frames."""
        out = bytearray()
        addr = phys_addr
        remaining = length
        while remaining > 0:
            frame = self.frame(addr >> PAGE_SHIFT)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            out += frame.read(offset, chunk)
            addr += chunk
            remaining -= chunk
        return bytes(out)

    def write_phys(self, phys_addr: int, data: bytes) -> None:
        """Write bytes starting at a physical address, crossing frames."""
        addr = phys_addr
        view = memoryview(data)
        while view:
            frame = self.frame(addr >> PAGE_SHIFT)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(len(view), PAGE_SIZE - offset)
            frame.write(offset, bytes(view[:chunk]))
            addr += chunk
            view = view[chunk:]
