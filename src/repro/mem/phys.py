"""Physical memory: a frame allocator whose frames back real bytes.

Frames are identified by PFN (page frame number).  A frame's physical
base address is ``pfn * PAGE_SIZE``; helpers convert both ways.  Byte
storage is allocated lazily (a frame that is never written costs no
Python memory), which lets benchmarks simulate multi-gigabyte transfers
cheaply while correctness tests still see real data.

Pin counts live here, on the frame, because pinning is a property of
physical pages: both ``get_user_pages`` (user buffers) and the page
cache (always-resident pages) end up bumping the same counter in Linux.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

from ..errors import OutOfMemory, PinningError
from ..units import PAGE_SHIFT, PAGE_SIZE
from .sglist import HOST_COPIES, materialize_enabled

_ZERO_PAGE = bytes(PAGE_SIZE)


class Frame:
    """One physical page frame: PFN, pin count, lazy byte storage.

    Storage supports copy-on-write detach: :meth:`view` hands out
    zero-copy read-only views (the spans a :class:`repro.mem.sglist.
    PayloadRef` is made of) and marks the frame *shared*; the next
    :meth:`write` then re-allocates the backing store first, so views
    taken earlier — e.g. a payload still in flight on the simulated
    wire — keep seeing the bytes as they were at gather time.
    """

    __slots__ = ("pfn", "pin_count", "_data", "_shared")

    def __init__(self, pfn: int):
        self.pfn = pfn
        self.pin_count = 0
        self._data: Optional[bytearray] = None
        self._shared = False

    @property
    def phys_addr(self) -> int:
        """Physical base address of this frame."""
        return self.pfn << PAGE_SHIFT

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    def pin(self) -> None:
        """Take a pin reference (page cannot be freed/migrated while held)."""
        self.pin_count += 1

    def unpin(self) -> None:
        """Drop a pin reference; unbalanced unpin is a caller bug."""
        if self.pin_count <= 0:
            raise PinningError(f"unpin of unpinned frame pfn={self.pfn}")
        self.pin_count -= 1

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` within the frame (a real,
        counted host copy; prefer :meth:`view` on the data path)."""
        self._check_range(offset, length)
        if length > 0:
            HOST_COPIES.copies += 1
            HOST_COPIES.nbytes += length
        if self._data is None:
            return _ZERO_PAGE[offset : offset + length]
        return bytes(self._data[offset : offset + length])

    def view(self, offset: int, length: int) -> memoryview:
        """Zero-copy read-only view of ``length`` bytes at ``offset``.

        The frame is marked shared; a later :meth:`write` detaches the
        storage (copy-on-write) so the view stays stable.  An unwritten
        frame returns a view of the shared zero page (a snapshot of its
        current all-zero content, consistent with COW semantics).
        """
        self._check_range(offset, length)
        if self._data is None:
            return memoryview(_ZERO_PAGE)[offset : offset + length]
        self._shared = True
        return memoryview(self._data).toreadonly()[offset : offset + length]

    def write(self, offset: int, data: "bytes | bytearray | memoryview") -> None:
        """Write ``data`` at ``offset`` within the frame."""
        nbytes = len(data)
        self._check_range(offset, nbytes)
        if self._data is None:
            self._data = bytearray(PAGE_SIZE)
        elif self._shared:
            # Copy-on-write detach: outstanding views keep the old
            # storage; this write (and later ones) get fresh storage.
            self._data = bytearray(self._data)
            self._shared = False
            HOST_COPIES.count(PAGE_SIZE)
        if nbytes > 0:
            HOST_COPIES.copies += 1
            HOST_COPIES.nbytes += nbytes
        self._data[offset : offset + nbytes] = data

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > PAGE_SIZE:
            raise ValueError(
                f"frame access out of range: offset={offset} length={length}"
            )


class PhysicalMemory:
    """Fixed-size pool of frames with O(log n) alloc/free.

    The free pool is a sorted list of coalesced *free runs* — maximal
    intervals ``[start, end)`` of contiguous free PFNs, held as the
    parallel arrays ``_run_starts``/``_run_ends``.  Single-frame
    allocation takes the head of the lowest run (the deterministic
    lowest-PFN policy the old ``min()``-over-a-set implementation had,
    without the O(n) scan); ``free`` re-inserts by binary search and
    coalesces with both neighbours; ``alloc_contiguous`` serves
    kmalloc-style requests by walking the run list for the lowest run
    long enough — the run list is tiny compared to the frame count, so
    this replaces the old sort-everything-per-call scan.
    """

    def __init__(self, total_frames: int):
        if total_frames < 1:
            raise ValueError(f"need at least 1 frame, got {total_frames}")
        self.total_frames = total_frames
        self._frames: dict[int, Frame] = {}
        self._run_starts: list[int] = [0]
        self._run_ends: list[int] = [total_frames]
        self._free_count = total_frames

    @property
    def free_frames(self) -> int:
        return self._free_count

    @property
    def allocated_frames(self) -> int:
        return self.total_frames - self._free_count

    def free_runs(self) -> list[tuple[int, int]]:
        """Snapshot of the free pool as ``(start, end)`` half-open runs."""
        return list(zip(self._run_starts, self._run_ends))

    def alloc(self) -> Frame:
        """Allocate one frame (lowest free PFN, deterministic)."""
        starts = self._run_starts
        if not starts:
            raise OutOfMemory("no free physical frames")
        pfn = starts[0]
        if pfn + 1 == self._run_ends[0]:
            del starts[0]
            del self._run_ends[0]
        else:
            starts[0] = pfn + 1
        self._free_count -= 1
        frame = Frame(pfn)
        self._frames[pfn] = frame
        return frame

    def alloc_contiguous(self, count: int) -> list[Frame]:
        """Allocate ``count`` physically adjacent frames (kmalloc model)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if count > self._free_count:
            raise OutOfMemory(f"need {count} frames, only {self._free_count} free")
        starts, ends = self._run_starts, self._run_ends
        for i, start in enumerate(starts):
            if ends[i] - start >= count:
                if start + count == ends[i]:
                    del starts[i]
                    del ends[i]
                else:
                    starts[i] = start + count
                self._free_count -= count
                frames = []
                for pfn in range(start, start + count):
                    frame = Frame(pfn)
                    self._frames[pfn] = frame
                    frames.append(frame)
                return frames
        raise OutOfMemory(f"no physically contiguous run of {count} frames")

    def free(self, frame: Frame) -> None:
        """Return a frame to the pool; pinned frames cannot be freed."""
        if frame.pinned:
            raise PinningError(f"freeing pinned frame pfn={frame.pfn}")
        pfn = frame.pfn
        if pfn not in self._frames:
            raise ValueError(f"double free of frame pfn={pfn}")
        del self._frames[pfn]
        starts, ends = self._run_starts, self._run_ends
        i = bisect_right(starts, pfn)
        merge_left = i > 0 and ends[i - 1] == pfn
        merge_right = i < len(starts) and starts[i] == pfn + 1
        if merge_left and merge_right:
            ends[i - 1] = ends[i]
            del starts[i]
            del ends[i]
        elif merge_left:
            ends[i - 1] = pfn + 1
        elif merge_right:
            starts[i] = pfn
        else:
            starts.insert(i, pfn)
            ends.insert(i, pfn + 1)
        self._free_count += 1

    def frame(self, pfn: int) -> Frame:
        """Look up an allocated frame by PFN."""
        try:
            return self._frames[pfn]
        except KeyError:
            raise ValueError(f"pfn {pfn} is not an allocated frame") from None

    def frame_at_phys(self, phys_addr: int) -> Frame:
        """Look up the allocated frame containing physical address."""
        return self.frame(phys_addr >> PAGE_SHIFT)

    # -- raw physical-address data access (what a DMA engine does) --------

    def read_phys(self, phys_addr: int, length: int) -> bytes:
        """Read bytes starting at a physical address, crossing frames."""
        if length <= 0:
            return b""
        offset = phys_addr & (PAGE_SIZE - 1)
        if offset + length <= PAGE_SIZE:
            # Fast path: the whole range lives in one frame — a single
            # slice, no chunk list, no join.
            return self.frame(phys_addr >> PAGE_SHIFT).read(offset, length)
        chunks = []
        addr = phys_addr
        remaining = length
        while remaining > 0:
            frame = self.frame(addr >> PAGE_SHIFT)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            chunks.append(frame.read(offset, chunk))
            addr += chunk
            remaining -= chunk
        HOST_COPIES.count(length)  # the join below is a second real copy
        return b"".join(chunks)

    def read_phys_view(self, phys_addr: int, length: int) -> list[memoryview]:
        """Zero-copy chunk views of a physical range (one per frame
        crossed) — what a DMA gather engine reads."""
        views: list[memoryview] = []
        addr = phys_addr
        remaining = length
        while remaining > 0:
            frame = self.frame(addr >> PAGE_SHIFT)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            views.append(frame.view(offset, chunk))
            addr += chunk
            remaining -= chunk
        return views

    def write_phys(self, phys_addr: int, data: "bytes | bytearray | memoryview") -> None:
        """Write bytes starting at a physical address, crossing frames."""
        addr = phys_addr
        view = memoryview(data)
        while view:
            frame = self.frame(addr >> PAGE_SHIFT)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(len(view), PAGE_SIZE - offset)
            frame.write(offset, view[:chunk])
            addr += chunk
            view = view[chunk:]

    def write_phys_sg(self, sg, payload, skip: int = 0) -> int:
        """Scatter a :class:`repro.mem.sglist.PayloadRef` across a
        physical segment list — what a DMA scatter engine does.

        ``sg`` is any iterable of segments with ``phys_addr``/``length``
        (duck-typed to avoid a circular import with ``layout``).
        ``skip`` consumes leading bytes of the segment list before the
        first write (directed-send deposit offsets).  Writing stops when
        either the payload or the segments run out; returns the bytes
        written.

        In legacy/materialize mode each per-segment piece is re-cast to
        ``bytes`` first (and counted) — exactly the ``bytes(view[:chunk])``
        the old NIC scatter loop performed before ``write_phys``.
        """
        legacy = materialize_enabled()
        segs = iter(sg)
        seg = next(segs, None)
        seg_off = 0
        while seg is not None and skip > 0:
            step = min(skip, seg.length - seg_off)
            seg_off += step
            skip -= step
            if seg_off == seg.length:
                seg = next(segs, None)
                seg_off = 0
        written = 0
        for chunk in payload.chunks():
            view = chunk if isinstance(chunk, memoryview) else memoryview(chunk)
            while len(view) and seg is not None:
                n = min(len(view), seg.length - seg_off)
                piece = view[:n]
                if legacy:
                    HOST_COPIES.count(n)
                    piece = bytes(piece)
                self.write_phys(seg.phys_addr + seg_off, piece)
                written += n
                seg_off += n
                view = view[n:]
                if seg_off == seg.length:
                    seg = next(segs, None)
                    seg_off = 0
            if seg is None:
                break
        return written
