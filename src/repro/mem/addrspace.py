"""User address spaces: VMAs, demand paging, fork/munmap notification.

This models just enough of the Linux mm to support the paper's
arguments:

* ``mmap`` creates a :class:`VMA`; pages are populated on first touch
  (demand paging), so pinning a fresh buffer is more expensive than
  pinning a warm one — exactly the effect GM registration cost depends
  on.
* ``munmap``/``mprotect``/``fork`` fire :class:`AddressSpaceChange`
  notifications to registered listeners.  The kernel's VMA SPY
  (:mod:`repro.kernel.vmaspy`) and through it the registration cache
  (:mod:`repro.gmkrc`) subscribe to these — the paper's central
  coherence mechanism.
* Each space has a small integer ``asid``.  GM's shared-port trick
  (paper section 3.2: encode an address-space descriptor in the high
  bits of a 64-bit pointer, on a 32-bit host) is implemented over these
  asids in :mod:`repro.gmkrc.spaces`.

Virtual addresses are plain ints; user VAs start at ``USER_BASE`` so
they never collide with kernel VAs (see :mod:`repro.mem.kmem`), making
address-type confusion detectable in tests — the exact failure mode the
MX API's explicit memory types exist to prevent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..errors import BadAddress, ProtectionFault
from ..units import PAGE_MASK, PAGE_SIZE, page_align_up
from .phys import Frame, PhysicalMemory
from .sglist import PayloadRef, seal, write_chunks

USER_BASE = 0x1000_0000  # first user-mappable virtual address
USER_TOP = 0x8000_0000  # 2 GB user space, mirroring 32-bit Linux


class Prot(enum.Flag):
    """VMA protection bits."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    RW = READ | WRITE


class ChangeKind(enum.Enum):
    """Kinds of address-space modification the spy layer can observe."""

    UNMAP = "unmap"
    PROTECT = "protect"
    FORK = "fork"
    EXIT = "exit"


@dataclass(frozen=True)
class AddressSpaceChange:
    """One address-space modification event delivered to listeners."""

    kind: ChangeKind
    space: "AddressSpace"
    start: int
    length: int


@dataclass
class VMA:
    """A virtual memory area: [start, end) with uniform protection."""

    start: int
    end: int
    prot: Prot

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    @property
    def length(self) -> int:
        return self.end - self.start


class AddressSpace:
    """One process's virtual address space."""

    _next_asid = 1

    def __init__(self, phys: PhysicalMemory):
        self.phys = phys
        self.asid = AddressSpace._next_asid
        AddressSpace._next_asid += 1
        self._vmas: list[VMA] = []
        self._pages: dict[int, Frame] = {}  # vpn -> frame
        self._borrowed: set[int] = set()  # vpns mapped over foreign frames
        self._next_mmap = USER_BASE
        self._listeners: list[Callable[[AddressSpaceChange], None]] = []
        self._alive = True

    # -- listeners (substrate for VMA SPY) --------------------------------

    def add_listener(self, fn: Callable[[AddressSpaceChange], None]) -> None:
        """Subscribe to address-space modification notifications."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[AddressSpaceChange], None]) -> None:
        self._listeners.remove(fn)

    def _notify(self, kind: ChangeKind, start: int, length: int) -> None:
        change = AddressSpaceChange(kind, self, start, length)
        for fn in list(self._listeners):
            fn(change)

    # -- mapping ----------------------------------------------------------

    def mmap(self, length: int, prot: Prot = Prot.RW, populate: bool = False) -> int:
        """Create an anonymous mapping; returns its base virtual address.

        ``populate=True`` faults every page in immediately (MAP_POPULATE);
        otherwise pages appear on first access, as under demand paging.
        """
        self._check_alive()
        if length <= 0:
            raise ValueError(f"mmap length must be positive, got {length}")
        length = page_align_up(length)
        start = self._find_region(length)
        vma = VMA(start, start + length, prot)
        self._vmas.append(vma)
        self._vmas.sort(key=lambda v: v.start)
        if populate:
            for vpn in range(start >> 12, (start + length) >> 12):
                self._populate(vpn)
        return start

    def map_frames(self, frames: list[Frame], prot: Prot = Prot.RW) -> int:
        """Map existing frames (e.g. page-cache pages) into this space.

        This is the mechanism behind file-backed ``mmap``: the frames
        are *borrowed* — they stay owned (and pinned) by whoever holds
        them, several spaces may map the same frames, and unmapping
        never frees them.  Returns the base virtual address.
        """
        self._check_alive()
        if not frames:
            raise ValueError("map_frames needs at least one frame")
        length = len(frames) * PAGE_SIZE
        start = self._find_region(length)
        self._vmas.append(VMA(start, start + length, prot))
        self._vmas.sort(key=lambda v: v.start)
        for i, frame in enumerate(frames):
            vpn = (start >> 12) + i
            self._pages[vpn] = frame
            self._borrowed.add(vpn)
        return start

    def munmap(self, start: int, length: int) -> None:
        """Remove mappings covering [start, start+length).

        Notification fires *before* teardown, as mmu-notifier style hooks
        do, so a registration cache can invalidate entries while the
        translation is still identifiable.
        """
        self._check_alive()
        if start & PAGE_MASK:
            raise BadAddress(f"munmap start not page aligned: {start:#x}")
        length = page_align_up(length)
        end = start + length
        self._notify(ChangeKind.UNMAP, start, length)
        new_vmas: list[VMA] = []
        for vma in self._vmas:
            if vma.end <= start or vma.start >= end:
                new_vmas.append(vma)
                continue
            # split around the unmapped hole
            if vma.start < start:
                new_vmas.append(VMA(vma.start, start, vma.prot))
            if vma.end > end:
                new_vmas.append(VMA(end, vma.end, vma.prot))
        self._vmas = sorted(new_vmas, key=lambda v: v.start)
        for vpn in range(start >> 12, end >> 12):
            frame = self._pages.pop(vpn, None)
            borrowed = vpn in self._borrowed
            self._borrowed.discard(vpn)
            if frame is not None and not borrowed and not frame.pinned:
                self.phys.free(frame)
            # A pinned frame stays allocated (DMA may be in flight); it is
            # simply no longer reachable from this space — the dangerous
            # situation stale registration-cache entries create.
            # Borrowed frames (file mappings) always stay with their owner.

    def mprotect(self, start: int, length: int, prot: Prot) -> None:
        """Change protection on [start, start+length)."""
        self._check_alive()
        length = page_align_up(length)
        end = start + length
        self._notify(ChangeKind.PROTECT, start, length)
        updated: list[VMA] = []
        for vma in self._vmas:
            if vma.end <= start or vma.start >= end:
                updated.append(vma)
                continue
            if vma.start < start:
                updated.append(VMA(vma.start, start, vma.prot))
            updated.append(VMA(max(vma.start, start), min(vma.end, end), prot))
            if vma.end > end:
                updated.append(VMA(end, vma.end, vma.prot))
        self._vmas = sorted(updated, key=lambda v: v.start)

    def fork(self) -> "AddressSpace":
        """Duplicate the space (eager copy, not COW — simpler, and the
        paper's concern is only that fork changes translations).

        The child gets copies of all populated pages in fresh frames; the
        parent's listeners are notified so caches covering the parent can
        react (GM's pin-down caches must flush on fork).
        """
        self._check_alive()
        self._notify(ChangeKind.FORK, USER_BASE, USER_TOP - USER_BASE)
        child = AddressSpace(self.phys)
        child._vmas = [VMA(v.start, v.end, v.prot) for v in self._vmas]
        child._next_mmap = self._next_mmap
        for vpn, frame in self._pages.items():
            if vpn in self._borrowed:
                # shared file mappings stay shared across fork
                child._pages[vpn] = frame
                child._borrowed.add(vpn)
            else:
                new_frame = self.phys.alloc()
                new_frame.write(0, frame.read(0, PAGE_SIZE))
                child._pages[vpn] = new_frame
        return child

    def destroy(self) -> None:
        """Tear down the space (process exit)."""
        if not self._alive:
            return
        self._notify(ChangeKind.EXIT, USER_BASE, USER_TOP - USER_BASE)
        for vpn, frame in self._pages.items():
            if vpn not in self._borrowed and not frame.pinned:
                self.phys.free(frame)
        self._pages.clear()
        self._borrowed.clear()
        self._vmas.clear()
        self._alive = False

    # -- translation / access ---------------------------------------------

    def vma_at(self, addr: int) -> Optional[VMA]:
        """The VMA containing ``addr``, or None."""
        for vma in self._vmas:
            if addr in vma:
                return vma
        return None

    def translate(self, vaddr: int, write: bool = False, fault_in: bool = True) -> int:
        """Translate a virtual address to a physical address.

        ``fault_in=False`` refuses to populate (returns what a hardware
        walk would see) and raises :class:`BadAddress` on a non-present
        page — used to model NIC-side translation, which cannot fault.
        """
        vma = self.vma_at(vaddr)
        if vma is None:
            raise BadAddress(f"unmapped address {vaddr:#x} in asid {self.asid}")
        needed = Prot.WRITE if write else Prot.READ
        if not vma.prot & needed:
            raise ProtectionFault(
                f"{'write' if write else 'read'} to {vaddr:#x} violates {vma.prot}"
            )
        vpn = vaddr >> 12
        frame = self._pages.get(vpn)
        if frame is None:
            if not fault_in:
                raise BadAddress(f"page at {vaddr:#x} not present (no fault allowed)")
            frame = self._populate(vpn)
        return frame.phys_addr | (vaddr & PAGE_MASK)

    def frame_of(self, vaddr: int, fault_in: bool = True) -> Frame:
        """The frame backing the page containing ``vaddr``."""
        phys = self.translate(vaddr, fault_in=fault_in)
        return self.phys.frame_at_phys(phys)

    def page_present(self, vaddr: int) -> bool:
        """True if the page containing ``vaddr`` is populated."""
        return (vaddr >> 12) in self._pages

    def iter_pages(self, vaddr: int, length: int) -> Iterator[int]:
        """Yield the page-base virtual address of each page in a range."""
        if length <= 0:
            return
        addr = vaddr & ~PAGE_MASK
        end = vaddr + length
        while addr < end:
            yield addr
            addr += PAGE_SIZE

    # -- data movement (used by syscalls and CPU copies) --------------------

    def write_bytes(self, vaddr: int, data: bytes) -> None:
        """Store ``data`` at ``vaddr`` (faulting pages in, checking prot)."""
        view = memoryview(data)
        addr = vaddr
        while view:
            phys = self.translate(addr, write=True)
            offset = phys & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            self.phys.write_phys(phys, view[:chunk])
            addr += chunk
            view = view[chunk:]

    def read_bytes(self, vaddr: int, length: int) -> bytes:
        """Load ``length`` bytes from ``vaddr``."""
        out = bytearray()
        addr = vaddr
        remaining = length
        while remaining > 0:
            phys = self.translate(addr, write=False)
            offset = phys & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            out += self.phys.read_phys(phys, chunk)
            addr += chunk
            remaining -= chunk
        return bytes(out)

    def read_payload(self, vaddr: int, length: int) -> PayloadRef:
        """Zero-copy gather of ``length`` bytes at ``vaddr`` into a
        :class:`PayloadRef` of page-span views (pages fault in)."""
        chunks: list = []
        addr = vaddr
        remaining = length
        while remaining > 0:
            phys = self.translate(addr, write=False)
            offset = phys & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            chunks.append(self.phys.frame_at_phys(phys).view(offset, chunk))
            addr += chunk
            remaining -= chunk
        return seal(PayloadRef.from_chunks(chunks))

    def write_payload(self, vaddr: int, payload: PayloadRef) -> None:
        """Scatter a :class:`PayloadRef` into this address space at
        ``vaddr`` — the zero-copy counterpart of :meth:`write_bytes`."""
        addr = vaddr
        for chunk in write_chunks(payload):
            self.write_bytes(addr, chunk)
            addr += len(chunk)

    # -- pinning (get_user_pages model) -------------------------------------

    def pin_range(self, vaddr: int, length: int) -> list[Frame]:
        """Pin every page of [vaddr, vaddr+length), faulting them in.

        Returns the pinned frames in order.  Raises and pins nothing if
        any page is unmapped (all-or-nothing, like get_user_pages).
        """
        pages = list(self.iter_pages(vaddr, length))
        frames: list[Frame] = []
        for page_addr in pages:
            vma = self.vma_at(page_addr)
            if vma is None:
                for f in frames:
                    f.unpin()
                raise BadAddress(f"pin of unmapped address {page_addr:#x}")
            frame = self.frame_of(page_addr)
            frame.pin()
            frames.append(frame)
        return frames

    @staticmethod
    def unpin_frames(frames: list[Frame]) -> None:
        """Release pins taken by :meth:`pin_range`."""
        for frame in frames:
            frame.unpin()

    # -- internals -----------------------------------------------------------

    def _populate(self, vpn: int) -> Frame:
        frame = self.phys.alloc()
        self._pages[vpn] = frame
        return frame

    def _find_region(self, length: int) -> int:
        """First-fit search over the VMA gaps (so freed regions are
        reused — the malloc/munmap address-recycling behaviour that
        makes stale registration-cache entries dangerous)."""
        candidate = USER_BASE
        for vma in self._vmas:  # sorted by start
            if candidate + length <= vma.start:
                return candidate
            candidate = max(candidate, vma.end)
        if candidate + length > USER_TOP:
            raise BadAddress("user address space exhausted")
        return candidate

    def _check_alive(self) -> None:
        if not self._alive:
            raise BadAddress(f"operation on destroyed address space {self.asid}")

    @property
    def populated_pages(self) -> int:
        """Number of currently populated pages (for tests)."""
        return len(self._pages)
