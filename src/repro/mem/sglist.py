"""Scatter/gather payload references: zero-copy plumbing for the data path.

The paper's argument is that copies are what kill in-kernel data paths.
The simulator models that argument faithfully in *simulated time* (every
modeled copy charges CPU nanoseconds through :meth:`repro.hw.cpu.Cpu.
copy`), but until this module existed it also paid the copies *for
real*: every hop of the data path materialized a fresh Python ``bytes``
object — gather-join on send, ``bytes(view)`` casts on scatter,
read-then-rewrite staging in every relay.  A :class:`PayloadRef` is the
cure: an immutable, ordered list of ``memoryview`` spans over page
frames that flows from the sender's source pages through the NIC, the
wire, and the receiver's scatter without ever being joined.  Bytes are
materialized (:meth:`PayloadRef.tobytes`) only at true sinks.

The cardinal rule of the whole refactor: **model costs are charged, host
copies are not.**  Nothing in this module touches ``cpu.copy`` or any
other simulated-time charge; it only changes what the host Python
process does, so every figure stays byte-identical.

Two support facilities live here because every layer needs them:

* :data:`HOST_COPIES` — a global accounting hook counting *real* host
  byte-copies (frame reads/writes, joins, casts, COW detaches).  The
  data-path benchmark reads it to prove the copies are gone, and CI
  pins a per-byte budget on it (deterministic, unlike wall-clock).
* ``set_materialize(True)`` — a legacy mode in which every payload
  builder eagerly snapshots to ``bytes`` and every scatter re-casts,
  reproducing (and counting) the pre-PayloadRef behaviour.  The
  benchmark runs both modes over the same traffic for an honest A/B;
  simulated time is identical in both.

In-flight safety: a view taken from a :class:`repro.mem.phys.Frame`
marks the frame *shared*; the frame's next write detaches its storage
first (copy-on-write), so a sender recycling its transmit buffer can
never corrupt a payload still on the simulated wire.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence
from zlib import crc32

from ..obs import registry as obs_registry


class CopyAccounting:
    """Counts real host byte-copies performed by the simulator.

    ``copies`` is the number of copy operations, ``nbytes`` the bytes
    they moved.  Purely observational: nothing in the model reads it.
    """

    __slots__ = ("copies", "nbytes")

    def __init__(self) -> None:
        self.copies = 0
        self.nbytes = 0

    def count(self, nbytes: int) -> None:
        if nbytes > 0:
            self.copies += 1
            self.nbytes += nbytes

    def reset(self) -> None:
        self.copies = 0
        self.nbytes = 0

    def snapshot(self) -> dict:
        return {"copies": self.copies, "nbytes": self.nbytes}


#: The global copy-accounting hook (see module docstring).
HOST_COPIES = CopyAccounting()


def _collect_host_copies(registry) -> None:
    """Publish :data:`HOST_COPIES` into a metrics registry at snapshot
    time.  Pull-style on purpose: the counting hot path stays two plain
    integer adds (repro.mem.phys inlines them), and the perf-smoke CI
    gate keeps reading the exact same numbers through the global."""
    registry.gauge("mem.host_copies.ops").set(HOST_COPIES.copies)
    registry.gauge("mem.host_copies.bytes").set(HOST_COPIES.nbytes)


obs_registry.register_collector(_collect_host_copies)

_materialize = False


def set_materialize(on: bool) -> None:
    """Switch the legacy bounce-buffer emulation on or off (bench A/B)."""
    global _materialize
    _materialize = bool(on)


def materialize_enabled() -> bool:
    return _materialize


def seal(ref: "PayloadRef") -> "PayloadRef":
    """Finish a payload builder.

    In normal operation this is the identity.  In legacy/materialize
    mode it eagerly snapshots the views to one ``bytes`` object — the
    gather-join every builder used to perform — and counts the copy.
    """
    if _materialize and ref.length:
        return PayloadRef.from_bytes(ref.tobytes())
    return ref


def write_chunks(ref: "PayloadRef") -> Iterator["bytes | memoryview"]:
    """Iterate a payload's chunks for a scatter-side consumer.

    In legacy/materialize mode each chunk is re-cast to ``bytes`` first
    (and counted) — the ``bytes(view[:chunk])`` every scatter loop used
    to do before handing data to ``write_phys``/``frame.write``.
    """
    if _materialize:
        for chunk in ref.chunks():
            HOST_COPIES.count(len(chunk))
            yield bytes(chunk)
    else:
        yield from ref.chunks()


def _as_chunks(obj) -> "tuple":
    """Normalize any bytes-like or PayloadRef into a chunk tuple."""
    if isinstance(obj, PayloadRef):
        return obj._chunks
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return (obj,) if len(obj) else ()
    raise TypeError(f"cannot compare PayloadRef with {type(obj).__name__}")


class PayloadRef:
    """An immutable scatter/gather reference to payload bytes.

    Holds an ordered tuple of non-empty chunk spans (``bytes`` or
    read-only ``memoryview`` objects over page frames).  All slicing and
    concatenation is zero-copy; :meth:`tobytes` is the only materializer
    and is meant for true sinks (file stores, trace renderers, tests).

    Compares equal to any bytes-like with the same content, so code and
    tests that did ``completion.data == b"hello"`` keep working.
    """

    __slots__ = ("_chunks", "length")

    def __init__(self, chunks: Sequence = (), _trusted: bool = False):
        if _trusted:
            self._chunks = tuple(chunks)
        else:
            self._chunks = tuple(c for c in chunks if len(c))
        self.length = sum(len(c) for c in self._chunks)

    # -- builders ---------------------------------------------------------

    @classmethod
    def empty(cls) -> "PayloadRef":
        return _EMPTY

    @classmethod
    def from_bytes(cls, data: "bytes | bytearray | memoryview") -> "PayloadRef":
        """Wrap an existing bytes-like (no copy)."""
        if not len(data):
            return _EMPTY
        return cls((data,), _trusted=True)

    @classmethod
    def from_chunks(cls, chunks: Iterable) -> "PayloadRef":
        """Build from an iterable of chunk spans (empties dropped)."""
        return cls(tuple(chunks))

    @classmethod
    def from_phys(cls, phys, sg) -> "PayloadRef":
        """Gather a physical scatter/gather list into chunk views.

        ``sg`` is any iterable of segments with ``phys_addr``/``length``
        (duck-typed to avoid importing :mod:`repro.mem.layout`).  This is
        what a DMA gather engine reads — views are taken *now*, so later
        writes to the source frames do not alter the payload (the frames
        detach copy-on-write).
        """
        chunks: list = []
        for seg in sg:
            if seg.length:
                chunks.extend(phys.read_phys_view(seg.phys_addr, seg.length))
        return seal(cls(tuple(chunks), _trusted=True))

    @classmethod
    def concat(cls, parts: Iterable["PayloadRef"]) -> "PayloadRef":
        """Concatenate payloads (zero-copy; chunk lists are spliced)."""
        chunks: list = []
        for part in parts:
            chunks.extend(part._chunks)
        if not chunks:
            return _EMPTY
        return cls(tuple(chunks), _trusted=True)

    # -- pickling ---------------------------------------------------------

    def __reduce__(self):
        """Pickle as plain per-chunk ``bytes``, preserving chunk structure.

        Shard borders ship payloads between worker processes, and
        ``memoryview`` chunks over page frames cannot cross a pipe.
        Materializing each chunk separately (rather than one flat blob)
        keeps the receiver's scatter write pattern — and therefore the
        ``HOST_COPIES`` op count — identical to the sequential run.
        These are wire-transport copies, not simulated host copies, so
        they are deliberately not accounted.
        """
        return (_rebuild_payload, (tuple(
            c if type(c) is bytes else bytes(c) for c in self._chunks),))

    # -- zero-copy access -------------------------------------------------

    def chunks(self) -> "tuple":
        """The underlying chunk spans, in payload order."""
        return self._chunks

    def slice(self, start: int, length: Optional[int] = None) -> "PayloadRef":
        """Zero-copy sub-range ``[start, start+length)``, clamped to the
        payload like bytes slicing (``length=None`` means to the end)."""
        if start < 0:
            raise ValueError(f"negative slice start {start}")
        start = min(start, self.length)
        end = self.length if length is None else min(start + max(0, length), self.length)
        if start == 0 and end == self.length:
            return self
        if start >= end:
            return _EMPTY
        out: list = []
        pos = 0
        for chunk in self._chunks:
            clen = len(chunk)
            if pos + clen <= start:
                pos += clen
                continue
            lo = max(0, start - pos)
            hi = min(clen, end - pos)
            if lo == 0 and hi == clen:
                out.append(chunk)
            else:
                view = chunk if isinstance(chunk, memoryview) else memoryview(chunk)
                out.append(view[lo:hi])
            pos += clen
            if pos >= end:
                break
        return PayloadRef(tuple(out), _trusted=True)

    # -- sinks ------------------------------------------------------------

    def tobytes(self) -> bytes:
        """Materialize to one ``bytes`` object (a real, counted copy —
        call this only at true sinks)."""
        if not self._chunks:
            return b""
        if len(self._chunks) == 1 and type(self._chunks[0]) is bytes:
            return self._chunks[0]  # already materialized; no copy
        HOST_COPIES.count(self.length)
        return b"".join(bytes(c) for c in self._chunks)

    def checksum(self) -> int:
        """CRC32 over the content without joining (fault layer, tests)."""
        crc = 0
        for chunk in self._chunks:
            crc = crc32(chunk, crc)
        return crc & 0xFFFFFFFF

    # -- bytes-like protocol ----------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def __bytes__(self) -> bytes:
        return self.tobytes()

    def __getitem__(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(self.length)
            if step != 1:
                raise ValueError("PayloadRef slices must have step 1")
            return self.slice(start, stop - start)
        if key < 0:
            key += self.length
        if not 0 <= key < self.length:
            raise IndexError("PayloadRef index out of range")
        pos = 0
        for chunk in self._chunks:
            if key < pos + len(chunk):
                return chunk[key - pos]
            pos += len(chunk)
        raise IndexError("PayloadRef index out of range")  # pragma: no cover

    def __eq__(self, other) -> bool:
        try:
            other_chunks = _as_chunks(other)
        except TypeError:
            return NotImplemented
        if isinstance(other, PayloadRef) and other.length != self.length:
            return False
        return _chunks_equal(self._chunks, other_chunks)

    def __repr__(self) -> str:
        return f"PayloadRef(length={self.length}, chunks={len(self._chunks)})"


def _chunks_equal(a: Sequence, b: Sequence) -> bool:
    """Compare two chunk streams byte-wise without joining either."""
    ai, bi = iter(a), iter(b)
    av = memoryview(next(ai, b""))
    bv = memoryview(next(bi, b""))
    while True:
        if not len(av):
            nxt = next(ai, None)
            if nxt is None:
                break
            av = memoryview(nxt)
            continue
        if not len(bv):
            nxt = next(bi, None)
            if nxt is None:
                break
            bv = memoryview(nxt)
            continue
        n = min(len(av), len(bv))
        if av[:n] != bv[:n]:
            return False
        av = av[n:]
        bv = bv[n:]
    # equal iff both streams exhausted with no residue
    if len(av):
        return False
    if len(bv) or next(bi, None) is not None:
        return False
    return next(ai, None) is None


def _rebuild_payload(chunks: tuple) -> PayloadRef:
    """Unpickle target for :meth:`PayloadRef.__reduce__`."""
    return PayloadRef(chunks, _trusted=True)


_EMPTY = PayloadRef((), _trusted=True)
