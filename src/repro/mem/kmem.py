"""Kernel virtual memory: kmalloc (contiguous) and vmalloc (scattered).

Kernel virtual addresses live above ``KERNEL_BASE`` (3 GB, the classic
32-bit Linux split), disjoint from user VAs.  The distinction the MX API
cares about (paper section 4.2) is:

* **kmalloc** memory is physically contiguous — a multi-page buffer is
  one DMA segment, which is what makes the send-copy-removal
  optimization pay off for up to 8 contiguous pages.
* **vmalloc** memory is only virtually contiguous — each page is a
  separate physical segment, requiring vectorial primitives.

Kernel pages are allocated resident (no demand paging) and are
effectively pinned from birth: the allocator takes a pin reference on
every frame so DMA from kernel buffers never needs get_user_pages, which
is exactly why the paper's *kernel virtual* address type is cheaper than
*user virtual*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BadAddress
from ..units import PAGE_MASK, PAGE_SIZE, page_align_up
from .phys import Frame, PhysicalMemory
from .sglist import PayloadRef, seal, write_chunks

KERNEL_BASE = 0xC000_0000  # 3 GB: start of kernel virtual addresses


@dataclass
class KernelAllocation:
    """One kernel allocation: VA range plus its backing frames in order."""

    vaddr: int
    length: int
    frames: list[Frame] = field(default_factory=list)
    contiguous: bool = False

    @property
    def end(self) -> int:
        return self.vaddr + self.length


class KernelSpace:
    """Kernel virtual address allocator over a :class:`PhysicalMemory`."""

    def __init__(self, phys: PhysicalMemory):
        self.phys = phys
        self._next_va = KERNEL_BASE
        self._allocs: dict[int, KernelAllocation] = {}  # base va -> alloc

    @staticmethod
    def is_kernel_address(vaddr: int) -> bool:
        """True for addresses in the kernel half of the address space."""
        return vaddr >= KERNEL_BASE

    def kmalloc(self, length: int) -> KernelAllocation:
        """Allocate physically contiguous, resident, pinned kernel memory."""
        return self._alloc(length, contiguous=True)

    def vmalloc(self, length: int) -> KernelAllocation:
        """Allocate virtually contiguous kernel memory (scattered frames)."""
        return self._alloc(length, contiguous=False)

    def kfree(self, alloc: KernelAllocation) -> None:
        """Free a kernel allocation and its frames."""
        if alloc.vaddr not in self._allocs:
            raise BadAddress(f"kfree of unknown allocation at {alloc.vaddr:#x}")
        del self._allocs[alloc.vaddr]
        for frame in alloc.frames:
            frame.unpin()
            if not frame.pinned:
                self.phys.free(frame)

    def _alloc(self, length: int, contiguous: bool) -> KernelAllocation:
        if length <= 0:
            raise ValueError(f"allocation length must be positive, got {length}")
        nbytes = page_align_up(length)
        npages = nbytes // PAGE_SIZE
        if contiguous:
            frames = self.phys.alloc_contiguous(npages)
        else:
            frames = [self.phys.alloc() for _ in range(npages)]
        for frame in frames:
            frame.pin()  # kernel memory is born pinned
        vaddr = self._next_va
        self._next_va += nbytes
        alloc = KernelAllocation(vaddr, length, frames, contiguous)
        self._allocs[vaddr] = alloc
        return alloc

    # -- translation / access ----------------------------------------------

    def find_allocation(self, vaddr: int) -> KernelAllocation:
        """The allocation containing ``vaddr`` (linear scan; small N)."""
        for alloc in self._allocs.values():
            if alloc.vaddr <= vaddr < alloc.vaddr + page_align_up(alloc.length):
                return alloc
        raise BadAddress(f"kernel address {vaddr:#x} not allocated")

    def translate(self, vaddr: int) -> int:
        """Kernel VA -> physical address."""
        alloc = self.find_allocation(vaddr)
        page_index = (vaddr - alloc.vaddr) >> 12
        return alloc.frames[page_index].phys_addr | (vaddr & PAGE_MASK)

    def write_bytes(self, vaddr: int, data: "bytes | bytearray | memoryview") -> None:
        """Store ``data`` at a kernel virtual address."""
        view = memoryview(data)
        addr = vaddr
        while view:
            phys = self.translate(addr)
            chunk = min(len(view), PAGE_SIZE - (phys & PAGE_MASK))
            self.phys.write_phys(phys, view[:chunk])
            addr += chunk
            view = view[chunk:]

    def read_bytes(self, vaddr: int, length: int) -> bytes:
        """Load ``length`` bytes from a kernel virtual address."""
        chunks = []
        addr = vaddr
        remaining = length
        while remaining > 0:
            phys = self.translate(addr)
            chunk = min(remaining, PAGE_SIZE - (phys & PAGE_MASK))
            chunks.append(self.phys.read_phys(phys, chunk))
            addr += chunk
            remaining -= chunk
        return b"".join(chunks)

    def read_payload(self, vaddr: int, length: int) -> PayloadRef:
        """Zero-copy gather of a kernel virtual range into a
        :class:`PayloadRef` of page-span views."""
        chunks: list = []
        addr = vaddr
        remaining = length
        while remaining > 0:
            phys = self.translate(addr)
            offset = phys & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            chunks.append(self.phys.frame_at_phys(phys).view(offset, chunk))
            addr += chunk
            remaining -= chunk
        return seal(PayloadRef.from_chunks(chunks))

    def write_payload(self, vaddr: int, payload: PayloadRef) -> None:
        """Scatter a :class:`PayloadRef` at a kernel virtual address."""
        addr = vaddr
        for chunk in write_chunks(payload):
            self.write_bytes(addr, chunk)
            addr += len(chunk)
