"""Memory subsystem: physical frames, address spaces, pinning, scatter/gather.

This is the substrate the whole paper argues about.  The key states a
page can be in — mapped in a user address space, mapped in kernel
virtual memory, unmapped but resident (page-cache pages), pinned for
DMA — are all first-class here:

* :class:`PhysicalMemory` hands out frames (page-sized) that back real
  bytes, so data transferred by the simulated NIC is genuinely moved and
  end-to-end correctness is testable.
* :class:`AddressSpace` models a process address space: VMAs created by
  ``mmap``, demand-paged population, ``munmap``/``mprotect``/``fork``
  with change-notification hooks (the basis of the paper's VMA SPY).
* :class:`KernelSpace` models kernel virtual memory with ``kmalloc``
  (physically contiguous) and ``vmalloc`` (virtually contiguous only).
* :mod:`repro.mem.layout` builds the scatter/gather lists a DMA engine
  consumes, merging physically contiguous runs (which is what makes the
  MX send-copy-removal optimization applicable to kmalloc'ed buffers but
  segment-per-page for vmalloc/user buffers).
"""

from .addrspace import VMA, AddressSpace, AddressSpaceChange, Prot
from .kmem import KernelAllocation, KernelSpace
from .layout import PhysSegment, sg_from_frames, sg_from_kernel, sg_from_user
from .phys import Frame, PhysicalMemory
from .sglist import HOST_COPIES, PayloadRef

__all__ = [
    "HOST_COPIES",
    "VMA",
    "AddressSpace",
    "AddressSpaceChange",
    "Frame",
    "KernelAllocation",
    "KernelSpace",
    "PayloadRef",
    "PhysSegment",
    "PhysicalMemory",
    "Prot",
    "sg_from_frames",
    "sg_from_kernel",
    "sg_from_user",
]
