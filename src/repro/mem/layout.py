"""Scatter/gather construction: turning buffers into DMA-able segments.

A :class:`PhysSegment` is what a DMA engine consumes: (physical address,
length).  The three builders correspond to the three memory-address
types of the MX kernel API (paper section 4.2):

* :func:`sg_from_user` — *user virtual*: walk the page table (pages must
  be present, i.e. pinned first), one segment per physically contiguous
  run.
* :func:`sg_from_kernel` — *kernel virtual*: translate through the
  kernel allocator; kmalloc buffers collapse to one segment.
* :func:`sg_from_frames` — *physical*: the caller already has frames
  (page-cache pages); no translation at all.

Adjacent physically contiguous pieces are merged, which is the property
the paper's send-copy-removal exploits ("up to 8 physically contiguous
pages" fit MX's medium-message path as one segment).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import PAGE_MASK, PAGE_SIZE
from .addrspace import AddressSpace
from .kmem import KernelSpace
from .phys import Frame


@dataclass(frozen=True)
class PhysSegment:
    """One physically contiguous piece of a transfer."""

    phys_addr: int
    length: int

    @property
    def end(self) -> int:
        return self.phys_addr + self.length


def _merge(segments: list[PhysSegment]) -> list[PhysSegment]:
    """Coalesce adjacent segments into maximal contiguous runs."""
    merged: list[PhysSegment] = []
    for seg in segments:
        if merged and merged[-1].end == seg.phys_addr:
            prev = merged.pop()
            merged.append(PhysSegment(prev.phys_addr, prev.length + seg.length))
        else:
            merged.append(seg)
    return merged


def sg_from_user(space: AddressSpace, vaddr: int, length: int) -> list[PhysSegment]:
    """Scatter/gather list for a user-virtual range.

    Pages must be resident — callers pin first (``pin_range``), exactly
    as a driver must call get_user_pages before building an sg list.
    ``fault_in=False`` enforces this: hitting a non-present page here is
    a driver bug, not a recoverable fault.
    """
    if length <= 0:
        return []
    segments: list[PhysSegment] = []
    addr = vaddr
    remaining = length
    while remaining > 0:
        phys = space.translate(addr, fault_in=False)
        chunk = min(remaining, PAGE_SIZE - (phys & PAGE_MASK))
        segments.append(PhysSegment(phys, chunk))
        addr += chunk
        remaining -= chunk
    return _merge(segments)


def sg_from_kernel(kspace: KernelSpace, vaddr: int, length: int) -> list[PhysSegment]:
    """Scatter/gather list for a kernel-virtual range."""
    if length <= 0:
        return []
    segments: list[PhysSegment] = []
    addr = vaddr
    remaining = length
    while remaining > 0:
        phys = kspace.translate(addr)
        chunk = min(remaining, PAGE_SIZE - (phys & PAGE_MASK))
        segments.append(PhysSegment(phys, chunk))
        addr += chunk
        remaining -= chunk
    return _merge(segments)


def sg_from_frames(
    frames: list[Frame], offset: int = 0, length: int | None = None
) -> list[PhysSegment]:
    """Scatter/gather list over a frame list (page-cache pages).

    ``offset`` skips into the first frame; ``length`` defaults to the
    rest of the frame run.  Frames that happen to be physically adjacent
    merge into one segment.
    """
    total = len(frames) * PAGE_SIZE - offset
    if length is None:
        length = total
    if length < 0 or offset < 0 or offset + length > len(frames) * PAGE_SIZE:
        raise ValueError(
            f"range offset={offset} length={length} exceeds {len(frames)} frames"
        )
    if length == 0:
        return []
    segments: list[PhysSegment] = []
    remaining = length
    pos = offset
    for frame in frames:
        if remaining <= 0:
            break
        if pos >= PAGE_SIZE:
            pos -= PAGE_SIZE
            continue
        chunk = min(remaining, PAGE_SIZE - pos)
        segments.append(PhysSegment(frame.phys_addr + pos, chunk))
        remaining -= chunk
        pos = 0
    return _merge(segments)
