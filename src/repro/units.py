"""Unit helpers: all simulation time is integer nanoseconds, all sizes bytes.

The simulator clock is an ``int`` counting nanoseconds since simulation
start.  Keeping time integral makes runs bit-for-bit deterministic and
avoids float accumulation drift over long streaming benchmarks.  These
helpers convert to and from the human-scale units the paper uses
(microseconds for latency, MB/s for bandwidth).

Bandwidth in the paper is decimal (1 MB = 10**6 bytes), matching how
Myricom specified link rates (250 MB/s for PCI-XD, 500 MB/s for PCI-XE).
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(value * S)


def to_us(ns_value: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return ns_value / US


def to_ms(ns_value: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return ns_value / MS


def to_seconds(ns_value: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns_value / S


# -- sizes -----------------------------------------------------------------

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024

MB = 10**6  # decimal megabyte, used for link/bus bandwidth ratings
GB = 10**9

PAGE_SIZE = 4096  # paper section 3.3: "4 kB on our architecture" (IA32)
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1


def pages_spanned(addr: int, length: int) -> int:
    """Number of pages touched by the byte range [addr, addr+length).

    A zero-length range touches no pages.  This matters for registration
    cost accounting: GM charges per page actually pinned.
    """
    if length <= 0:
        return 0
    first = addr >> PAGE_SHIFT
    last = (addr + length - 1) >> PAGE_SHIFT
    return last - first + 1


def page_align_down(addr: int) -> int:
    """Round ``addr`` down to the containing page boundary."""
    return addr & ~PAGE_MASK


def page_align_up(addr: int) -> int:
    """Round ``addr`` up to the next page boundary (identity if aligned)."""
    return (addr + PAGE_MASK) & ~PAGE_MASK


# -- bandwidth -------------------------------------------------------------


def transfer_time_ns(size_bytes: int, bandwidth_bytes_per_s: float) -> int:
    """Wire/bus occupancy in ns for ``size_bytes`` at the given bandwidth.

    Rounds up: a transfer occupies at least one whole nanosecond per
    partially-used nanosecond, which keeps back-to-back streaming
    conservative rather than optimistic.
    """
    if size_bytes <= 0:
        return 0
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bytes_per_s}")
    exact = size_bytes * S / bandwidth_bytes_per_s
    return max(1, int(-(-exact // 1)))  # ceil


def bandwidth_mb_s(size_bytes: int, elapsed_ns: int) -> float:
    """Achieved bandwidth in decimal MB/s, as the paper's plots report it."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
    return size_bytes * S / elapsed_ns / MB
